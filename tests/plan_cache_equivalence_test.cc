// The plan cache's equivalence contract (optimizer/plan_cache.h): a
// template-skewed workload produces bit-identical results, plans, and
// re-optimization decisions with the cache on or off — the only permitted
// differences are the kPlan event's cache bookkeeping (cache/fss fields,
// num_estimates dropping to 0 on a hit) and the wall-clock the cache exists
// to save. Also pinned: the serial hit/miss sequence is deterministic, hit
// and miss counts are exact under concurrent EngineServer workers, and a
// mid-workload invalidation never serves a stale skeleton.
#include <future>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/server.h"
#include "engine/trace.h"
#include "optimizer/plan_cache.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace lpce::eng {
namespace {

/// Everything the contract pins for one query.
struct Outcome {
  uint64_t result_count = 0;
  int num_reopts = 0;
  std::string initial_plan;
  std::string final_plan;
  std::shared_ptr<QueryTrace> trace;
};

std::string StripPlanTimes(const std::string& plan) {
  std::string out;
  out.reserve(plan.size());
  size_t pos = 0;
  while (pos < plan.size()) {
    const size_t hit = plan.find(" time=", pos);
    if (hit == std::string::npos) {
      out.append(plan, pos, plan.size() - pos);
      break;
    }
    out.append(plan, pos, hit - pos);
    size_t end = hit + 6;
    while (end < plan.size() && plan[end] != '\n' && plan[end] != ' ') ++end;
    pos = end;
  }
  return out;
}

Outcome Summarize(const RunStats& stats) {
  Outcome outcome;
  outcome.result_count = stats.result_count;
  outcome.num_reopts = stats.num_reopts;
  outcome.initial_plan = StripPlanTimes(stats.initial_plan);
  outcome.final_plan = StripPlanTimes(stats.final_plan);
  outcome.trace = stats.trace;
  return outcome;
}

/// Bit-identity modulo the cache's own bookkeeping: spans compare fully;
/// events compare fully except the kPlan event's num_estimates (0 on a hit)
/// and cache/fss fields. Everything else — every checkpoint q-error, every
/// re-opt decision and cost, every span cardinality — must match exactly.
void ExpectEquivalentModuloCache(const Outcome& off, const Outcome& on,
                                 const std::string& context) {
  EXPECT_EQ(on.result_count, off.result_count) << context;
  EXPECT_EQ(on.num_reopts, off.num_reopts) << context;
  EXPECT_EQ(on.initial_plan, off.initial_plan) << context;
  EXPECT_EQ(on.final_plan, off.final_plan) << context;

  const auto& spans_off = off.trace->spans();
  const auto& spans_on = on.trace->spans();
  ASSERT_EQ(spans_on.size(), spans_off.size()) << context;
  for (size_t i = 0; i < spans_off.size(); ++i) {
    const TraceSpan& a = spans_off[i];
    const TraceSpan& b = spans_on[i];
    const std::string at = context + " span " + std::to_string(i);
    EXPECT_EQ(b.id, a.id) << at;
    EXPECT_EQ(b.round, a.round) << at;
    EXPECT_EQ(b.seq, a.seq) << at;
    EXPECT_EQ(b.op, a.op) << at;
    EXPECT_EQ(b.rels, a.rels) << at;
    EXPECT_EQ(b.est_card, a.est_card) << at;
    EXPECT_EQ(b.actual_card, a.actual_card) << at;
    EXPECT_EQ(b.qerror, a.qerror) << at;
    EXPECT_EQ(b.outer_span, a.outer_span) << at;
    EXPECT_EQ(b.inner_span, a.inner_span) << at;
    EXPECT_EQ(b.outer_rows, a.outer_rows) << at;
    EXPECT_EQ(b.inner_rows, a.inner_rows) << at;
  }

  const auto& events_off = off.trace->events();
  const auto& events_on = on.trace->events();
  ASSERT_EQ(events_on.size(), events_off.size()) << context;
  for (size_t i = 0; i < events_off.size(); ++i) {
    const TraceEvent& a = events_off[i];
    const TraceEvent& b = events_on[i];
    const std::string at = context + " event " + std::to_string(i);
    EXPECT_EQ(b.kind, a.kind) << at;
    EXPECT_EQ(b.round, a.round) << at;
    EXPECT_EQ(b.seq, a.seq) << at;
    EXPECT_EQ(b.rels, a.rels) << at;
    EXPECT_EQ(b.est_card, a.est_card) << at;
    EXPECT_EQ(b.actual_card, a.actual_card) << at;
    EXPECT_EQ(b.qerror, a.qerror) << at;
    EXPECT_EQ(b.threshold, a.threshold) << at;
    EXPECT_EQ(b.policy_allows, a.policy_allows) << at;
    EXPECT_EQ(b.tripped, a.tripped) << at;
    EXPECT_EQ(b.plan_cost, a.plan_cost) << at;
    EXPECT_EQ(b.before_cost, a.before_cost) << at;
    EXPECT_EQ(b.decision, a.decision) << at;
    if (a.kind != TraceEventKind::kPlan) {
      EXPECT_EQ(b.num_estimates, a.num_estimates) << at;
    }
  }
}

/// The kPlan event's cache outcome ("hit"/"miss"; "" when caching is off).
std::string CacheDecision(const Outcome& outcome) {
  if (outcome.trace->events().empty()) return "";
  const TraceEvent& plan = outcome.trace->events().front();
  EXPECT_EQ(plan.kind, TraceEventKind::kPlan);
  return plan.cache_decision;
}

/// Adversarial estimator (same shape as serving_equivalence_test.cc):
/// underestimates joins so checkpoints trip and the cache's interaction with
/// re-optimization — lazy estimator preparation on a hit, re-planning always
/// against live estimators — is actually exercised.
class UnderEstimator : public card::CardinalityEstimator {
 public:
  explicit UnderEstimator(const stats::DatabaseStats* stats)
      : histogram_(stats) {}
  std::string name() const override { return "under"; }
  void PrepareQuery(const qry::Query& query) override {
    histogram_.PrepareQuery(query);
  }
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    const double base = histogram_.EstimateSubset(query, rels);
    return qry::PopCount(rels) > 1 ? std::max(1.0, base / 1e4) : base;
  }

 private:
  card::HistogramEstimator histogram_;
};

constexpr int kNumTemplates = 20;
constexpr int kWorkloadSize = 200;

/// Parameterized over the executor batch size (0 = row-at-a-time Volcano
/// oracle, 1024 = vectorized batches): the cache's equivalence contract must
/// hold in both execution modes — in particular a cache hit must rebind the
/// skeleton's scan filters to the query's literals before the batch path's
/// selection vectors consume them.
class PlanCacheEquivalenceTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    common::SetGlobalPoolSize(4);
    db::SynthImdbOptions opts;
    opts.scale = 0.02;
    database_ = db::BuildSynthImdb(opts).release();
    stats_ = new stats::DatabaseStats();
    stats_->Build(*database_);

    // Template pool: 20 distinct generated queries. The serving workload
    // draws 200 queries from the pool with Zipf-style skew (weight 1/rank) —
    // the template-heavy regime the cache targets. Exact repeats are the
    // honest model for the default fingerprint (identical literals); the
    // cross-literal case is covered by plan_cache_test.cc.
    wk::GeneratorOptions gen;
    gen.seed = 1207;
    wk::QueryGenerator generator(database_, gen);
    pool_ = new std::vector<wk::LabeledQuery>(
        generator.GenerateLabeled(kNumTemplates, 2, 5));

    sequence_ = new std::vector<int>();
    std::mt19937 rng(4242);
    std::vector<double> weights;
    for (int i = 0; i < kNumTemplates; ++i) weights.push_back(1.0 / (i + 1));
    std::discrete_distribution<int> dist(weights.begin(), weights.end());
    for (int i = 0; i < kWorkloadSize; ++i) sequence_->push_back(dist(rng));
  }

  static void TearDownTestSuite() {
    delete sequence_;
    sequence_ = nullptr;
    delete pool_;
    pool_ = nullptr;
    delete stats_;
    stats_ = nullptr;
    delete database_;
    database_ = nullptr;
    common::SetGlobalPoolSize(0);
  }

  static RunConfig Config(int exec_batch) {
    RunConfig config;
    config.enable_reopt = true;
    config.qerror_threshold = 10.0;
    config.exec_batch_size = exec_batch;
    return config;
  }

  /// The cache-off serial baseline, one Outcome per workload position.
  static std::vector<Outcome> Baseline(int exec_batch) {
    std::vector<Outcome> outcomes;
    UnderEstimator under(stats_);
    Engine engine(database_, opt::CostModel{});
    for (int idx : *sequence_) {
      const auto& labeled = (*pool_)[idx];
      outcomes.push_back(Summarize(
          engine.RunQuery(labeled.query, &under, nullptr, Config(exec_batch))));
      EXPECT_EQ(outcomes.back().result_count, labeled.FinalCard());
    }
    return outcomes;
  }

  static EngineServer::SessionFactory Factory() {
    return [](int worker_id) {
      (void)worker_id;
      EngineServer::Session session;
      session.initial = std::make_unique<UnderEstimator>(stats_);
      return session;
    };
  }

  /// Expected serial decisions: a template misses on first use, hits after.
  static std::vector<std::string> ExpectedDecisions() {
    std::vector<std::string> expected;
    std::set<int> seen;
    for (int idx : *sequence_) {
      expected.push_back(seen.insert(idx).second ? "miss" : "hit");
    }
    return expected;
  }

  static size_t NumDistinctUsed() {
    return std::set<int>(sequence_->begin(), sequence_->end()).size();
  }

  static db::Database* database_;
  static stats::DatabaseStats* stats_;
  static std::vector<wk::LabeledQuery>* pool_;
  static std::vector<int>* sequence_;
};

db::Database* PlanCacheEquivalenceTest::database_ = nullptr;
stats::DatabaseStats* PlanCacheEquivalenceTest::stats_ = nullptr;
std::vector<wk::LabeledQuery>* PlanCacheEquivalenceTest::pool_ = nullptr;
std::vector<int>* PlanCacheEquivalenceTest::sequence_ = nullptr;

TEST_P(PlanCacheEquivalenceTest, SerialCacheOnMatchesCacheOffBitIdentically) {
  const std::vector<Outcome> baseline = Baseline(GetParam());

  opt::PlanCache cache(64);
  UnderEstimator under(stats_);
  Engine engine(database_, opt::CostModel{});
  engine.set_plan_cache(&cache);
  const std::vector<std::string> expected_decisions = ExpectedDecisions();
  for (size_t q = 0; q < sequence_->size(); ++q) {
    const auto& labeled = (*pool_)[(*sequence_)[q]];
    const Outcome on = Summarize(
        engine.RunQuery(labeled.query, &under, nullptr, Config(GetParam())));
    ExpectEquivalentModuloCache(baseline[q], on, "query " + std::to_string(q));
    // The serial hit/miss sequence is fully determined by the workload.
    EXPECT_EQ(CacheDecision(on), expected_decisions[q])
        << "query " << q << " template " << (*sequence_)[q];
    // The cache-off baseline carries no cache fields at all.
    EXPECT_EQ(CacheDecision(baseline[q]), "");
  }

  const auto counters = cache.counters();
  EXPECT_EQ(counters.misses, NumDistinctUsed());
  EXPECT_EQ(counters.hits, sequence_->size() - NumDistinctUsed());
  EXPECT_EQ(counters.inserts, NumDistinctUsed());
  EXPECT_EQ(counters.evictions, 0u);
  EXPECT_EQ(counters.size, NumDistinctUsed());
}

TEST_P(PlanCacheEquivalenceTest, ServedCacheOnMatchesBaselineAtAllWorkerCounts) {
  const std::vector<Outcome> baseline = Baseline(GetParam());

  for (int workers : {1, 2, 4}) {
    ServerOptions options;
    options.num_workers = workers;
    options.max_queue = sequence_->size();
    options.run_config = Config(GetParam());
    options.plan_cache_capacity = 64;
    EngineServer server(database_, opt::CostModel{}, Factory(), options);
    ASSERT_NE(server.plan_cache(), nullptr);

    std::vector<std::shared_future<RunStats>> futures;
    for (int idx : *sequence_) {
      auto admitted = server.Submit((*pool_)[idx].query);
      ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
      futures.push_back(admitted.value());
    }
    for (size_t q = 0; q < futures.size(); ++q) {
      const Outcome on = Summarize(futures[q].get());
      ExpectEquivalentModuloCache(
          baseline[q], on,
          "query " + std::to_string(q) + " at " + std::to_string(workers) +
              " workers");
      EXPECT_FALSE(CacheDecision(on).empty());
    }

    // Exact accounting under any interleaving: every query either hit or
    // missed; two workers may race-miss the same template but only the first
    // insert lands, so resident entries == distinct templates, no evictions.
    const auto counters = server.plan_cache()->counters();
    EXPECT_EQ(counters.hits + counters.misses, sequence_->size());
    EXPECT_EQ(counters.inserts, NumDistinctUsed());
    EXPECT_GE(counters.misses, NumDistinctUsed());
    EXPECT_EQ(counters.evictions, 0u);
    EXPECT_EQ(counters.size, NumDistinctUsed());
  }
}

TEST_P(PlanCacheEquivalenceTest, WarmedCacheGivesExactHitCountsConcurrently) {
  // After deterministically warming every template, the 200-query skewed
  // workload over 4 workers is all hits — exactly 200, no race can miss.
  ServerOptions options;
  options.num_workers = 4;
  options.max_queue = sequence_->size() + kNumTemplates;
  options.run_config = Config(GetParam());
  options.plan_cache_capacity = 64;
  EngineServer server(database_, opt::CostModel{}, Factory(), options);

  for (int t = 0; t < kNumTemplates; ++t) {
    auto warm = server.RunSync((*pool_)[t].query);
    ASSERT_TRUE(warm.ok());
  }
  const auto warmed = server.plan_cache()->counters();
  EXPECT_EQ(warmed.misses, static_cast<uint64_t>(kNumTemplates));
  EXPECT_EQ(warmed.hits, 0u);

  std::vector<std::shared_future<RunStats>> futures;
  for (int idx : *sequence_) {
    auto admitted = server.Submit((*pool_)[idx].query);
    ASSERT_TRUE(admitted.ok());
    futures.push_back(admitted.value());
  }
  for (size_t q = 0; q < futures.size(); ++q) {
    const Outcome on = Summarize(futures[q].get());
    EXPECT_EQ(on.result_count, (*pool_)[(*sequence_)[q]].FinalCard());
    EXPECT_EQ(CacheDecision(on), "hit") << "query " << q;
  }

  const auto counters = server.plan_cache()->counters();
  EXPECT_EQ(counters.hits, sequence_->size());
  EXPECT_EQ(counters.misses, static_cast<uint64_t>(kNumTemplates));
}

TEST_P(PlanCacheEquivalenceTest, MidWorkloadInvalidationNeverServesStale) {
  // A statistics-epoch bump halfway through the workload: the cache empties,
  // every template misses again on next use, and — the actual point — every
  // post-bump query still matches the cache-off baseline bit-for-bit, so no
  // stale skeleton was ever served.
  const std::vector<Outcome> baseline = Baseline(GetParam());

  ServerOptions options;
  options.num_workers = 1;  // deterministic decision sequence
  options.run_config = Config(GetParam());
  options.plan_cache_capacity = 64;
  EngineServer server(database_, opt::CostModel{}, Factory(), options);

  const size_t half = sequence_->size() / 2;
  std::set<int> seen;
  for (size_t q = 0; q < sequence_->size(); ++q) {
    if (q == half) {
      server.InvalidatePlanCache();
      seen.clear();  // every template must miss again after the bump
    }
    const int idx = (*sequence_)[q];
    auto result = server.RunSync((*pool_)[idx].query);
    ASSERT_TRUE(result.ok());
    const Outcome on = Summarize(result.value());
    ExpectEquivalentModuloCache(baseline[q], on, "query " + std::to_string(q));
    EXPECT_EQ(CacheDecision(on), seen.insert(idx).second ? "miss" : "hit")
        << "query " << q;
  }

  const auto counters = server.plan_cache()->counters();
  EXPECT_EQ(counters.invalidations, 1u);
  EXPECT_EQ(counters.hits + counters.misses, sequence_->size());
}

INSTANTIATE_TEST_SUITE_P(ExecMode, PlanCacheEquivalenceTest,
                         ::testing::Values(0, 1024),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0
                                      ? std::string("Volcano")
                                      : "Batch" + std::to_string(info.param);
                         });

TEST(PlanCacheEnvTest, CapacityResolvesFromEnvKnobs) {
  // The deployment path: LPCE_PLAN_CACHE turns the shared cache on (default
  // capacity 1024), LPCE_PLAN_CACHE_CAP overrides the capacity, "0"/unset
  // leaves it off. Same setenv idiom as serving_stress_test's worker knob.
  unsetenv("LPCE_PLAN_CACHE");
  unsetenv("LPCE_PLAN_CACHE_CAP");
  EXPECT_EQ(ServerOptions::FromEnv().plan_cache_capacity, 0u);

  setenv("LPCE_PLAN_CACHE", "1", 1);
  EXPECT_EQ(ServerOptions::FromEnv().plan_cache_capacity, 1024u);

  setenv("LPCE_PLAN_CACHE_CAP", "77", 1);
  EXPECT_EQ(ServerOptions::FromEnv().plan_cache_capacity, 77u);

  setenv("LPCE_PLAN_CACHE_CAP", "garbage", 1);
  EXPECT_EQ(ServerOptions::FromEnv().plan_cache_capacity, 1024u);

  setenv("LPCE_PLAN_CACHE", "0", 1);
  EXPECT_EQ(ServerOptions::FromEnv().plan_cache_capacity, 0u);

  unsetenv("LPCE_PLAN_CACHE");
  unsetenv("LPCE_PLAN_CACHE_CAP");
}

}  // namespace
}  // namespace lpce::eng
