// Parameterized executor sweep on the synthetic schema: every (join
// algorithm x scan type x predicate operator) combination must agree with
// the canonical hash plan on randomly generated queries.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "workload/workload.h"

namespace lpce::exec {
namespace {

struct SweepParam {
  PhysOp join_op;
  bool index_scans;
  uint64_t seed;
};

class ExecSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static void SetUpTestSuite() {
    db::SynthImdbOptions opts;
    opts.scale = 0.03;
    database_ = db::BuildSynthImdb(opts).release();
  }
  static void TearDownTestSuite() {
    delete database_;
    database_ = nullptr;
  }

  static db::Database* database_;
};

db::Database* ExecSweepTest::database_ = nullptr;

TEST_P(ExecSweepTest, MatchesCanonicalCount) {
  const SweepParam param = GetParam();
  wk::GeneratorOptions gen;
  gen.seed = param.seed;
  wk::QueryGenerator generator(database_, gen);
  for (int joins : {2, 4, 6}) {
    wk::LabeledQuery labeled;
    labeled.query = generator.Generate(joins);
    wk::LabelQuery(*database_, &labeled);

    auto plan = BuildCanonicalHashPlan(labeled.query);
    std::vector<PlanNode*> nodes;
    PostOrderPlan(plan.get(), &nodes);
    for (PlanNode* node : nodes) {
      if (node->is_join()) {
        node->op = param.join_op;
      } else if (param.index_scans && !node->filters.empty() &&
                 node->filters.front().op != qry::CmpOp::kNe) {
        node->op = PhysOp::kIndexScan;
        node->index_col = node->filters.front().col;
      }
    }
    Executor executor(database_, &labeled.query);
    RowSetPtr result = executor.Execute(plan.get());
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->num_rows(), labeled.FinalCard())
        << PhysOpName(param.join_op) << " index=" << param.index_scans
        << " joins=" << joins << " seed=" << param.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecSweepTest,
    ::testing::Values(SweepParam{PhysOp::kHashJoin, false, 11},
                      SweepParam{PhysOp::kHashJoin, true, 12},
                      SweepParam{PhysOp::kMergeJoin, false, 13},
                      SweepParam{PhysOp::kMergeJoin, true, 14},
                      SweepParam{PhysOp::kNestLoopJoin, false, 15},
                      SweepParam{PhysOp::kNestLoopJoin, true, 16},
                      SweepParam{PhysOp::kHashJoin, true, 17},
                      SweepParam{PhysOp::kMergeJoin, true, 18}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = PhysOpName(info.param.join_op);
      name += info.param.index_scans ? "Index" : "Seq";
      name += "S" + std::to_string(info.param.seed);
      return name;
    });

}  // namespace
}  // namespace lpce::exec
