// Parameterized executor sweep on the synthetic schema: every (join
// algorithm x scan type x predicate operator) combination must agree with
// the canonical hash plan on randomly generated queries.
#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "engine/trace.h"
#include "exec/executor.h"
#include "exec/vectorized.h"
#include "workload/workload.h"

namespace lpce::exec {
namespace {

struct SweepParam {
  PhysOp join_op;
  bool index_scans;
  uint64_t seed;
};

class ExecSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static void SetUpTestSuite() {
    db::SynthImdbOptions opts;
    opts.scale = 0.03;
    database_ = db::BuildSynthImdb(opts).release();
  }
  static void TearDownTestSuite() {
    delete database_;
    database_ = nullptr;
  }

  static db::Database* database_;
};

db::Database* ExecSweepTest::database_ = nullptr;

TEST_P(ExecSweepTest, MatchesCanonicalCount) {
  const SweepParam param = GetParam();
  wk::GeneratorOptions gen;
  gen.seed = param.seed;
  wk::QueryGenerator generator(database_, gen);
  for (int joins : {2, 4, 6}) {
    wk::LabeledQuery labeled;
    labeled.query = generator.Generate(joins);
    wk::LabelQuery(*database_, &labeled);

    auto plan = BuildCanonicalHashPlan(labeled.query);
    std::vector<PlanNode*> nodes;
    PostOrderPlan(plan.get(), &nodes);
    for (PlanNode* node : nodes) {
      if (node->is_join()) {
        node->op = param.join_op;
      } else if (param.index_scans && !node->filters.empty() &&
                 node->filters.front().op != qry::CmpOp::kNe) {
        node->op = PhysOp::kIndexScan;
        node->index_col = node->filters.front().col;
      }
    }
    Executor executor(database_, &labeled.query);
    RowSetPtr result = executor.Execute(plan.get());
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->num_rows(), labeled.FinalCard())
        << PhysOpName(param.join_op) << " index=" << param.index_scans
        << " joins=" << joins << " seed=" << param.seed;
  }
}

// Differential harness for the vectorized path: at every (batch size x pool
// size) combination, every finished operator's rowset and actual cardinality
// and the deterministic trace must match the row-at-a-time single-thread
// run bit for bit. Checkpoints are enabled with a threshold no synthetic
// cardinality can reach (1e300 rather than infinity — the Release build uses
// -ffast-math), so checkpoint events are evaluated and traced at every node
// without ever tripping.
TEST_P(ExecSweepTest, BatchMatchesVolcanoBitIdentically) {
  const SweepParam param = GetParam();
  wk::GeneratorOptions gen;
  gen.seed = param.seed;
  wk::QueryGenerator generator(database_, gen);
  for (int joins : {2, 4}) {
    wk::LabeledQuery labeled;
    labeled.query = generator.Generate(joins);

    auto make_plan = [&]() {
      auto plan = BuildCanonicalHashPlan(labeled.query);
      std::vector<PlanNode*> nodes;
      PostOrderPlan(plan.get(), &nodes);
      for (PlanNode* node : nodes) {
        if (node->is_join()) {
          node->op = param.join_op;
        } else if (param.index_scans && !node->filters.empty() &&
                   node->filters.front().op != qry::CmpOp::kNe) {
          node->op = PhysOp::kIndexScan;
          node->index_col = node->filters.front().col;
        }
      }
      return plan;
    };

    struct Outcome {
      std::vector<RowSetPtr> rowsets;  // post-order
      std::vector<uint64_t> actuals;
      std::string trace_json;
    };
    auto run = [&](int batch, int pool, int late) {
      common::SetGlobalPoolSize(pool);
      auto plan = make_plan();
      eng::QueryTrace trace;
      Executor::Options options;
      options.batch_size = batch;
      options.late_materialization = late;
      options.enable_checkpoints = true;
      options.qerror_threshold = 1e300;
      options.trace = &trace;
      Executor executor(database_, &labeled.query);
      Executor::RunResult result = executor.Run(plan.get(), options);
      EXPECT_EQ(result.tripped, nullptr);
      EXPECT_FALSE(result.aborted);
      Outcome out;
      std::vector<PlanNode*> nodes;
      PostOrderPlan(plan.get(), &nodes);
      for (PlanNode* node : nodes) {
        auto it = result.finished.find(node);
        EXPECT_NE(it, result.finished.end());
        // Late intermediates carry row ids; the deferred gather must
        // reproduce the oracle's payload columns bit for bit (identity for
        // the materialized lanes).
        out.rowsets.push_back(it != result.finished.end()
                                  ? MaterializeRowSet(*database_, it->second)
                                  : nullptr);
        out.actuals.push_back(node->actual_card);
      }
      out.trace_json = trace.ToJson(eng::TraceJsonMode::kDeterministic);
      return out;
    };

    const Outcome oracle = run(/*batch=*/0, /*pool=*/1, /*late=*/0);
    for (int batch : {1, 3, 1024}) {
      for (int pool : {1, 2, 4}) {
        // late=1 on merge/nest-loop sweeps exercises the fallback: plans the
        // late kernels do not cover must take the plain batch path and still
        // match bit for bit.
        for (int late : {0, 1}) {
          SCOPED_TRACE("joins=" + std::to_string(joins) +
                       " batch=" + std::to_string(batch) +
                       " pool=" + std::to_string(pool) +
                       " late=" + std::to_string(late) +
                       " seed=" + std::to_string(param.seed));
          const Outcome got = run(batch, pool, late);
          ASSERT_EQ(got.rowsets.size(), oracle.rowsets.size());
          for (size_t i = 0; i < oracle.rowsets.size(); ++i) {
            EXPECT_EQ(got.actuals[i], oracle.actuals[i]) << "node " << i;
            ASSERT_NE(got.rowsets[i], nullptr);
            ASSERT_NE(oracle.rowsets[i], nullptr);
            EXPECT_TRUE(got.rowsets[i]->schema == oracle.rowsets[i]->schema)
                << "node " << i;
            EXPECT_EQ(got.rowsets[i]->row_count, oracle.rowsets[i]->row_count)
                << "node " << i;
            EXPECT_TRUE(got.rowsets[i]->cols == oracle.rowsets[i]->cols)
                << "node " << i;
          }
          EXPECT_EQ(got.trace_json, oracle.trace_json);
        }
      }
    }
  }
  common::SetGlobalPoolSize(0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecSweepTest,
    ::testing::Values(SweepParam{PhysOp::kHashJoin, false, 11},
                      SweepParam{PhysOp::kHashJoin, true, 12},
                      SweepParam{PhysOp::kMergeJoin, false, 13},
                      SweepParam{PhysOp::kMergeJoin, true, 14},
                      SweepParam{PhysOp::kNestLoopJoin, false, 15},
                      SweepParam{PhysOp::kNestLoopJoin, true, 16},
                      SweepParam{PhysOp::kHashJoin, true, 17},
                      SweepParam{PhysOp::kMergeJoin, true, 18}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = PhysOpName(info.param.join_op);
      name += info.param.index_scans ? "Index" : "Seq";
      name += "S" + std::to_string(info.param.seed);
      return name;
    });

}  // namespace
}  // namespace lpce::exec
