// Differential cardinality tests against the brute-force exact oracle
// (tests/testing/exact_card.{h,cc}):
//   1. the executor-based workload labeler agrees exactly with the oracle on
//      every canonical sub-plan of ~200 generated queries, and
//   2. HistogramEstimator and a small trained LPCE-I stay within documented
//      aggregate q-error bounds against the oracle's true cardinalities.
//
// Documented bounds (see DESIGN.md "Observability"): on this workload the
// histogram estimator's independence assumptions hold to median q-error <= 8
// and p95 <= 1e4; a briefly-trained LPCE-I stays within median <= 32 and
// p95 <= 1e4. These are loose by design — the test guards against estimator
// regressions of orders of magnitude, not day-to-day noise.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "exec/executor.h"
#include "lpce/estimators.h"
#include "testing/exact_card.h"
#include "workload/workload.h"

namespace lpce {
namespace {

double Percentile(std::vector<double> values, double pct) {
  LPCE_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const double idx = pct / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

class DifferentialCardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.01;  // tables of a few hundred rows: brute-force friendly
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);

    wk::GeneratorOptions gen;
    gen.seed = 911;
    wk::QueryGenerator generator(database_.get(), gen);
    queries_ = generator.GenerateLabeled(200, 1, 3);
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  std::vector<wk::LabeledQuery> queries_;
};

TEST_F(DifferentialCardTest, LabelerMatchesExactOracle) {
  // The workload labeler (executor over the canonical hash plan) and the
  // backtracking oracle compute true cardinalities by entirely different
  // means; they must agree exactly, subset by subset.
  for (const auto& labeled : queries_) {
    for (const auto& [rels, card] : labeled.true_cards) {
      EXPECT_EQ(testing::ExactCardinality(*database_, labeled.query, rels), card)
          << labeled.query.ToString(database_->catalog()) << " subset " << rels;
    }
  }
}

TEST_F(DifferentialCardTest, HistogramQErrorWithinDocumentedBounds) {
  card::HistogramEstimator estimator(&stats_);
  std::vector<double> qerrors;
  for (const auto& labeled : queries_) {
    for (const auto& [rels, card] : labeled.true_cards) {
      const double est = estimator.EstimateSubset(labeled.query, rels);
      qerrors.push_back(exec::QError(est, static_cast<double>(card)));
    }
  }
  EXPECT_LE(Percentile(qerrors, 50), 8.0);
  EXPECT_LE(Percentile(qerrors, 95), 1e4);
}

TEST_F(DifferentialCardTest, LpceIQErrorWithinDocumentedBounds) {
  model::FeatureEncoder encoder(&database_->catalog(), &stats_);
  wk::GeneratorOptions gen;
  gen.seed = 313;
  wk::QueryGenerator generator(database_.get(), gen);
  auto train = generator.GenerateLabeled(60, 1, 3);

  model::TreeModelConfig config;
  config.feature_dim = encoder.dim();
  config.dim = 16;
  config.embed_hidden = 16;
  config.out_hidden = 32;
  config.log_max_card =
      std::log1p(static_cast<double>(wk::MaxCardinality(train)));
  model::TreeModel lpce_i(&encoder, config);
  model::TrainOptions topt;
  topt.epochs = 8;
  model::TrainTreeModel(&lpce_i, *database_, train, topt);
  model::TreeModelEstimator estimator("LPCE-I", &lpce_i, database_.get());

  std::vector<double> qerrors;
  for (const auto& labeled : queries_) {
    estimator.PrepareQuery(labeled.query);
    for (const auto& [rels, card] : labeled.true_cards) {
      const double est = estimator.EstimateSubset(labeled.query, rels);
      qerrors.push_back(exec::QError(est, static_cast<double>(card)));
    }
  }
  EXPECT_LE(Percentile(qerrors, 50), 32.0);
  EXPECT_LE(Percentile(qerrors, 95), 1e4);
}

}  // namespace
}  // namespace lpce
