// Tests for the LPCE estimator adapters: the LpceREstimator's executed-tree
// reconstruction from bottom-up observations, its unit-tree assembly for
// mixed subsets, and TreeModelEstimator consistency.
#include <cmath>

#include <gtest/gtest.h>

#include "lpce/estimators.h"
#include "workload/workload.h"

namespace lpce::model {
namespace {

class EstimatorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.03;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
    encoder_ = std::make_unique<FeatureEncoder>(&database_->catalog(), &stats_);

    wk::GeneratorOptions gen;
    gen.seed = 15;
    gen.require_nonempty = true;
    wk::QueryGenerator generator(database_.get(), gen);
    train_ = generator.GenerateLabeled(30, 4, 6);
    labeled_ = train_.back();

    TreeModelConfig config;
    config.feature_dim = encoder_->dim();
    config.dim = 16;
    config.embed_hidden = 16;
    config.out_hidden = 32;
    config.log_max_card =
        std::log1p(static_cast<double>(wk::MaxCardinality(train_)));
    lpce_r_ = std::make_unique<LpceR>(encoder_.get(), config);
    LpceRTrainOptions options;
    options.pretrain.epochs = 3;
    options.refine_epochs = 2;
    options.prefixes_per_query = 2;
    TrainLpceR(lpce_r_.get(), *database_, train_, options);
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  std::unique_ptr<FeatureEncoder> encoder_;
  std::vector<wk::LabeledQuery> train_;
  wk::LabeledQuery labeled_;
  std::unique_ptr<LpceR> lpce_r_;
};

TEST_F(EstimatorsTest, ObservationsMergeBottomUp) {
  LpceREstimator estimator(lpce_r_.get(), database_.get());
  // Observe leaves then their join, in execution (post-order) order.
  auto logical = qry::BuildCanonicalTree(labeled_.query, labeled_.query.AllRels());
  std::vector<const qry::LogicalNode*> nodes;
  qry::PostOrder(logical.get(), &nodes);
  // First three post-order nodes of a left-deep tree: leaf, leaf, join.
  ASSERT_GE(nodes.size(), 3u);
  ASSERT_TRUE(nodes[0]->is_leaf());
  ASSERT_TRUE(nodes[1]->is_leaf());
  ASSERT_FALSE(nodes[2]->is_leaf());
  for (int i = 0; i < 3; ++i) {
    estimator.ObserveActual(
        labeled_.query, nodes[i]->rels,
        static_cast<double>(labeled_.true_cards.at(nodes[i]->rels)));
  }
  // Estimating any superset must work (the join root is now one unit).
  const double est =
      estimator.EstimateSubset(labeled_.query, labeled_.query.AllRels());
  EXPECT_GE(est, 0.0);
  EXPECT_TRUE(std::isfinite(est));
}

TEST_F(EstimatorsTest, ObservedSubsetsInfluenceEstimates) {
  LpceREstimator estimator(lpce_r_.get(), database_.get());
  const double before =
      estimator.EstimateSubset(labeled_.query, labeled_.query.AllRels());
  auto logical = qry::BuildCanonicalTree(labeled_.query, labeled_.query.AllRels());
  std::vector<const qry::LogicalNode*> nodes;
  qry::PostOrder(logical.get(), &nodes);
  for (const auto* node : nodes) {
    if (node->rels == labeled_.query.AllRels()) continue;
    estimator.ObserveActual(
        labeled_.query, node->rels,
        static_cast<double>(labeled_.true_cards.at(node->rels)));
  }
  const double after =
      estimator.EstimateSubset(labeled_.query, labeled_.query.AllRels());
  // With everything but the root executed, the refined estimate should not
  // be identical to the cold estimate (the injected encoding changes the
  // computation) — and must stay valid.
  EXPECT_TRUE(std::isfinite(after));
  EXPECT_GE(after, 0.0);
  EXPECT_NE(after, before);
}

TEST_F(EstimatorsTest, DuplicateObservationsAreIdempotent) {
  LpceREstimator estimator(lpce_r_.get(), database_.get());
  estimator.ObserveActual(labeled_.query, 1, 100.0);
  estimator.ObserveActual(labeled_.query, 1, 100.0);  // duplicate: no effect
  const double est =
      estimator.EstimateSubset(labeled_.query, labeled_.query.AllRels());
  EXPECT_TRUE(std::isfinite(est));
}

TEST_F(EstimatorsTest, OutOfOrderObservationFallsBackGracefully) {
  LpceREstimator estimator(lpce_r_.get(), database_.get());
  // Observe a 3-table subset without its children having been observed:
  // the estimator synthesizes a canonical tree instead of crashing.
  qry::RelSet rels = 0;
  for (qry::RelSet s = 1; s <= labeled_.query.AllRels(); ++s) {
    if (qry::PopCount(s) == 3 && labeled_.query.IsConnected(s)) {
      rels = s;
      break;
    }
  }
  ASSERT_NE(rels, 0u);
  estimator.ObserveActual(labeled_.query, rels, 500.0);
  const double est =
      estimator.EstimateSubset(labeled_.query, labeled_.query.AllRels());
  EXPECT_TRUE(std::isfinite(est));
}

TEST_F(EstimatorsTest, ResetClearsState) {
  LpceREstimator estimator(lpce_r_.get(), database_.get());
  const double cold =
      estimator.EstimateSubset(labeled_.query, labeled_.query.AllRels());
  estimator.ObserveActual(labeled_.query, 1, 42.0);
  estimator.ResetObservations();
  EXPECT_DOUBLE_EQ(
      estimator.EstimateSubset(labeled_.query, labeled_.query.AllRels()), cold);
}

TEST_F(EstimatorsTest, CloneEstTreePreservesStructure) {
  auto logical = qry::BuildCanonicalTree(labeled_.query, labeled_.query.AllRels());
  auto tree = MakeEstTree(labeled_.query, logical.get(), *database_,
                          &labeled_.true_cards);
  auto copy = CloneEstTree(tree.get());
  std::function<void(const EstNode*, const EstNode*)> compare =
      [&](const EstNode* a, const EstNode* b) {
        ASSERT_EQ(a->rels, b->rels);
        EXPECT_EQ(a->table_pos, b->table_pos);
        EXPECT_EQ(a->join_idx, b->join_idx);
        EXPECT_DOUBLE_EQ(a->true_card, b->true_card);
        ASSERT_EQ(a->left == nullptr, b->left == nullptr);
        ASSERT_EQ(a->right == nullptr, b->right == nullptr);
        if (a->left != nullptr) compare(a->left.get(), b->left.get());
        if (a->right != nullptr) compare(a->right.get(), b->right.get());
      };
  compare(tree.get(), copy.get());
}

TEST_F(EstimatorsTest, BatchedPrepareMatchesLazyEstimates) {
  // The Sec. 6.1 batched preparation must agree exactly with per-subset
  // canonical-tree inference for every connected subset.
  TreeModelEstimator lazy("lazy", &lpce_r_->refine(), database_.get());
  TreeModelEstimator batched("batched", &lpce_r_->refine(), database_.get());
  for (const auto& labeled : {train_.front(), train_.back()}) {
    batched.PrepareQuery(labeled.query);
    for (qry::RelSet rels = 1; rels <= labeled.query.AllRels(); ++rels) {
      if (!labeled.query.IsConnected(rels)) continue;
      const double a = lazy.EstimateSubset(labeled.query, rels);
      const double b = batched.EstimateSubset(labeled.query, rels);
      EXPECT_NEAR(a, b, std::max(1.0, a) * 1e-4) << "rels=" << rels;
    }
  }
}

TEST_F(EstimatorsTest, BatchedPrepareInvalidatedByDifferentQuery) {
  TreeModelEstimator estimator("x", &lpce_r_->refine(), database_.get());
  estimator.PrepareQuery(train_.front().query);
  // A different query must not read the stale cache.
  const auto& other = train_[1];
  TreeModelEstimator fresh("y", &lpce_r_->refine(), database_.get());
  EXPECT_NEAR(estimator.EstimateSubset(other.query, other.query.AllRels()),
              fresh.EstimateSubset(other.query, other.query.AllRels()), 1e-6);
}

TEST_F(EstimatorsTest, TreeModelEstimatorIsDeterministic) {
  TreeModelEstimator estimator("x", &lpce_r_->refine(), database_.get());
  const double a =
      estimator.EstimateSubset(labeled_.query, labeled_.query.AllRels());
  const double b =
      estimator.EstimateSubset(labeled_.query, labeled_.query.AllRels());
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace lpce::model
