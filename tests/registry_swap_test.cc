// Swap-equivalence suite for the versioned model registry (ROADMAP item 1;
// lpce/model_registry.h, engine/server.h versioned serving).
//
// The contract under test: with publishes forced mid-workload at workers
// {1, 2, 4}, every query's results and deterministic trace are bit-identical
// to a single-version run pinned at that query's RunStats::model_version —
// i.e. a hot swap relocates the version *boundary* between queries but never
// mixes versions within one query — and no query is ever rejected or dropped
// on account of a publish. The three versions are deliberately different
// models (distinct init seeds), so any cross-version leak shows up as a
// different plan, estimate, or trace byte, not a tolerance blip.
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/server.h"
#include "engine/trace.h"
#include "lpce/estimators.h"
#include "lpce/model_registry.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace lpce::eng {
namespace {

struct Outcome {
  uint64_t result_count = 0;
  int num_reopts = 0;
  size_t num_estimates = 0;
  std::string initial_plan;
  std::string final_plan;
  std::string trace_json;  // TraceJsonMode::kDeterministic
};

std::string StripPlanTimes(const std::string& plan) {
  std::string out;
  out.reserve(plan.size());
  size_t pos = 0;
  while (pos < plan.size()) {
    const size_t hit = plan.find(" time=", pos);
    if (hit == std::string::npos) {
      out.append(plan, pos, plan.size() - pos);
      break;
    }
    out.append(plan, pos, hit - pos);
    size_t end = hit + 6;
    while (end < plan.size() && plan[end] != '\n' && plan[end] != ' ') ++end;
    pos = end;
  }
  return out;
}

Outcome Summarize(const RunStats& stats) {
  Outcome outcome;
  outcome.result_count = stats.result_count;
  outcome.num_reopts = stats.num_reopts;
  outcome.num_estimates = stats.num_estimates;
  outcome.initial_plan = StripPlanTimes(stats.initial_plan);
  outcome.final_plan = StripPlanTimes(stats.final_plan);
  outcome.trace_json = stats.trace->ToJson(TraceJsonMode::kDeterministic);
  return outcome;
}

void ExpectSameOutcome(const Outcome& expected, const Outcome& actual,
                       const std::string& context) {
  EXPECT_EQ(actual.result_count, expected.result_count) << context;
  EXPECT_EQ(actual.num_reopts, expected.num_reopts) << context;
  EXPECT_EQ(actual.num_estimates, expected.num_estimates) << context;
  EXPECT_EQ(actual.initial_plan, expected.initial_plan) << context;
  EXPECT_EQ(actual.final_plan, expected.final_plan) << context;
  EXPECT_EQ(actual.trace_json, expected.trace_json)
      << context << ":\n"
      << DiffTraceJson(expected.trace_json, actual.trace_json);
}

constexpr int kNumVersions = 3;
constexpr double kThreshold = 10.0;

class RegistrySwapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    common::SetGlobalPoolSize(4);
    db::SynthImdbOptions opts;
    opts.scale = 0.02;
    database_ = db::BuildSynthImdb(opts).release();
    stats_ = new stats::DatabaseStats();
    stats_->Build(*database_);
    encoder_ = new model::FeatureEncoder(&database_->catalog(), stats_);
    wk::GeneratorOptions gen;
    gen.seed = 1207;
    wk::QueryGenerator generator(database_, gen);
    workload_ = new std::vector<wk::LabeledQuery>(
        generator.GenerateLabeled(60, 2, 4));

    // Three deliberately *different* versions: untrained models whose
    // deterministic random init differs by seed, so their estimates — and
    // hence plans, re-opt decisions, and traces — genuinely diverge. Each
    // version also carries its own LPCE-R refiner so the refinement path is
    // version-pinned too.
    versions_ = new std::vector<std::shared_ptr<model::ModelVersion>>();
    for (int v = 0; v < kNumVersions; ++v) {
      model::TreeModelConfig config;
      config.feature_dim = encoder_->dim();
      config.dim = 16;
      config.embed_hidden = 16;
      config.out_hidden = 32;
      config.log_max_card = 18.0;
      config.seed = static_cast<uint64_t>(100 + v);
      auto snapshot = std::make_shared<model::ModelVersion>();
      snapshot->version = static_cast<uint64_t>(v + 1);
      snapshot->model = std::make_shared<model::TreeModel>(encoder_, config);
      snapshot->refiner = std::make_shared<model::LpceR>(encoder_, config);
      versions_->push_back(std::move(snapshot));
    }

    // Single-version baselines: the whole workload executed serially with
    // each version pinned for every query. The swap runs below must hit
    // these byte-for-byte, query by query.
    baselines_ = new std::vector<std::vector<Outcome>>();
    for (int v = 0; v < kNumVersions; ++v) {
      const model::ModelVersion& version = *(*versions_)[v];
      model::TreeModelEstimator initial("LPCE-I", version.model.get(),
                                        database_);
      model::LpceREstimator refiner(version.refiner.get(), database_);
      Engine engine(database_, opt::CostModel{});
      std::vector<Outcome> outcomes;
      for (const auto& labeled : *workload_) {
        outcomes.push_back(Summarize(
            engine.RunQuery(labeled.query, &initial, &refiner, Config())));
        EXPECT_EQ(outcomes.back().result_count, labeled.FinalCard());
      }
      baselines_->push_back(std::move(outcomes));
    }
  }

  static void TearDownTestSuite() {
    delete baselines_;
    baselines_ = nullptr;
    delete versions_;
    versions_ = nullptr;
    delete workload_;
    workload_ = nullptr;
    delete encoder_;
    encoder_ = nullptr;
    delete stats_;
    stats_ = nullptr;
    delete database_;
    database_ = nullptr;
    common::SetGlobalPoolSize(0);
  }

  static RunConfig Config() {
    RunConfig config;
    config.enable_reopt = true;
    config.qerror_threshold = kThreshold;
    return config;
  }

  /// The versioned factory every test uses: sessions read exactly the models
  /// of the version they were built over.
  static EngineServer::VersionedSessionFactory Factory() {
    return [](int worker_id, const model::ModelVersion& version) {
      (void)worker_id;
      EngineServer::Session session;
      session.initial = std::make_unique<model::TreeModelEstimator>(
          "LPCE-I", version.model.get(), database_);
      session.refiner = std::make_unique<model::LpceREstimator>(
          version.refiner.get(), database_);
      return session;
    };
  }

  /// Publishes pre-built version index `v` (0-based). Registry version
  /// numbers restart at 1 per registry, matching versions_[v]->version.
  static uint64_t PublishVersion(model::ModelRegistry* registry, int v) {
    return registry->Publish((*versions_)[v]->model, (*versions_)[v]->refiner,
                             "test-v" + std::to_string(v + 1));
  }

  static const Outcome& Baseline(uint64_t version, size_t query) {
    EXPECT_GE(version, 1u);
    EXPECT_LE(version, static_cast<uint64_t>(kNumVersions));
    return (*baselines_)[version - 1][query];
  }

  static db::Database* database_;
  static stats::DatabaseStats* stats_;
  static model::FeatureEncoder* encoder_;
  static std::vector<wk::LabeledQuery>* workload_;
  static std::vector<std::shared_ptr<model::ModelVersion>>* versions_;
  static std::vector<std::vector<Outcome>>* baselines_;
};

db::Database* RegistrySwapTest::database_ = nullptr;
stats::DatabaseStats* RegistrySwapTest::stats_ = nullptr;
model::FeatureEncoder* RegistrySwapTest::encoder_ = nullptr;
std::vector<wk::LabeledQuery>* RegistrySwapTest::workload_ = nullptr;
std::vector<std::shared_ptr<model::ModelVersion>>* RegistrySwapTest::versions_ =
    nullptr;
std::vector<std::vector<Outcome>>* RegistrySwapTest::baselines_ = nullptr;

TEST_F(RegistrySwapTest, BaselinesDiverge) {
  // Sanity for the suite's power: if all versions produced identical
  // outcomes, the swap assertions below could not catch version mixing.
  int differing = 0;
  for (size_t q = 0; q < workload_->size(); ++q) {
    if ((*baselines_)[0][q].trace_json != (*baselines_)[1][q].trace_json ||
        (*baselines_)[1][q].trace_json != (*baselines_)[2][q].trace_json) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST_F(RegistrySwapTest, SerialSwapExactCountsAndBitIdentity) {
  // One worker, synchronous queries, publishes at known boundaries: every
  // count is exact, every outcome is pinned.
  model::ModelRegistry registry;
  PublishVersion(&registry, 0);
  const common::MetricsSnapshot before =
      common::MetricsRegistry::Global().Snapshot();

  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = workload_->size();
  options.run_config = Config();
  options.model_registry = &registry;
  EngineServer server(database_, opt::CostModel{}, Factory(), options);

  const size_t third = workload_->size() / 3;
  for (size_t q = 0; q < workload_->size(); ++q) {
    if (q == third) PublishVersion(&registry, 1);
    if (q == 2 * third) PublishVersion(&registry, 2);
    const uint64_t expected_version = q < third ? 1 : q < 2 * third ? 2 : 3;
    Result<RunStats> run = server.RunSync((*workload_)[q].query);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run.value().model_version, expected_version) << "query " << q;
    ExpectSameOutcome(Baseline(expected_version, q), Summarize(run.value()),
                      "serial swap, query " + std::to_string(q));
  }
  server.Shutdown();

  const EngineServer::Counters counters = server.counters();
  EXPECT_EQ(counters.submitted, workload_->size());
  EXPECT_EQ(counters.completed, workload_->size());
  EXPECT_EQ(counters.rejected, 0u);
  // Exactly one rebuild per observed publish: the single worker crossed two
  // version boundaries.
  EXPECT_EQ(counters.session_rebuilds, 2u);
  EXPECT_EQ(registry.counters().published, 3u);

  // The lpce.registry.* exposition moved by exactly this test's publishes
  // and rebuilds (snapshot delta: exact even when other suites ran first).
  const common::MetricsSnapshot delta = common::Delta(
      before, common::MetricsRegistry::Global().Snapshot());
  EXPECT_EQ(delta.counters.at("lpce.registry.published_total"), 2u);
  EXPECT_EQ(delta.counters.at("lpce.registry.session_rebuilds_total"), 2u);
  EXPECT_EQ(delta.gauges.at("lpce.registry.version"), 3.0);
}

TEST_F(RegistrySwapTest, WavePublishesBitIdenticalAtAllWorkerCounts) {
  // Publishes between fully-drained waves: each wave's version is exact, at
  // every worker count, and every query is bit-identical to its pinned run.
  const size_t third = workload_->size() / 3;
  for (int workers : {1, 2, 4}) {
    model::ModelRegistry registry;
    PublishVersion(&registry, 0);
    ServerOptions options;
    options.num_workers = workers;
    options.max_queue = workload_->size();
    options.run_config = Config();
    options.model_registry = &registry;
    EngineServer server(database_, opt::CostModel{}, Factory(), options);

    for (int wave = 0; wave < 3; ++wave) {
      if (wave > 0) PublishVersion(&registry, wave);
      const size_t begin = static_cast<size_t>(wave) * third;
      const size_t end = wave == 2 ? workload_->size() : begin + third;
      std::vector<std::shared_future<RunStats>> futures;
      for (size_t q = begin; q < end; ++q) {
        Result<std::shared_future<RunStats>> admitted =
            server.Submit((*workload_)[q].query);
        ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
        futures.push_back(admitted.value());
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        const size_t q = begin + i;
        const RunStats stats = futures[i].get();
        EXPECT_EQ(stats.model_version, static_cast<uint64_t>(wave + 1))
            << "query " << q << " at " << workers << " workers";
        ExpectSameOutcome(Baseline(static_cast<uint64_t>(wave + 1), q),
                          Summarize(stats),
                          "wave swap, query " + std::to_string(q) + " at " +
                              std::to_string(workers) + " workers");
      }
    }
    server.Shutdown();

    const EngineServer::Counters counters = server.counters();
    EXPECT_EQ(counters.submitted, workload_->size());
    EXPECT_EQ(counters.completed, workload_->size());
    EXPECT_EQ(counters.rejected, 0u);
    // Every worker that served a post-publish query rebuilt once per crossed
    // boundary; at least one worker served each wave.
    EXPECT_GE(counters.session_rebuilds, 2u);
    EXPECT_LE(counters.session_rebuilds, 2u * static_cast<uint64_t>(workers));
    EXPECT_EQ(registry.counters().published, 3u);
  }
}

TEST_F(RegistrySwapTest, RacingPublishNeverMixesVersionsWithinAQuery) {
  // Publishes land while the queue drains under 4 workers: each query's
  // version is whichever its worker had pinned — unknowable in advance, but
  // every query must still be bit-identical to that version's pinned run,
  // versions must be valid, and nothing is dropped or rejected.
  model::ModelRegistry registry;
  PublishVersion(&registry, 0);
  ServerOptions options;
  options.num_workers = 4;
  options.max_queue = workload_->size();
  options.run_config = Config();
  options.model_registry = &registry;
  EngineServer server(database_, opt::CostModel{}, Factory(), options);

  std::vector<std::shared_future<RunStats>> futures;
  for (const auto& labeled : *workload_) {
    Result<std::shared_future<RunStats>> admitted = server.Submit(labeled.query);
    ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
    futures.push_back(admitted.value());
  }
  // Fire the publishes while queries are in flight.
  bool published_v2 = false, published_v3 = false;
  while (!published_v3) {
    const uint64_t done = server.counters().completed;
    if (!published_v2 && done >= workload_->size() / 3) {
      PublishVersion(&registry, 1);
      published_v2 = true;
    }
    if (published_v2 && done >= 2 * workload_->size() / 3) {
      PublishVersion(&registry, 2);
      published_v3 = true;
    }
    std::this_thread::yield();
  }

  for (size_t q = 0; q < futures.size(); ++q) {
    const RunStats stats = futures[q].get();
    ASSERT_GE(stats.model_version, 1u) << "query " << q;
    ASSERT_LE(stats.model_version, 3u) << "query " << q;
    ExpectSameOutcome(Baseline(stats.model_version, q), Summarize(stats),
                      "racing swap, query " + std::to_string(q) + " at v" +
                          std::to_string(stats.model_version));
  }
  server.Shutdown();

  const EngineServer::Counters counters = server.counters();
  EXPECT_EQ(counters.submitted, workload_->size());
  EXPECT_EQ(counters.completed, workload_->size());
  EXPECT_EQ(counters.rejected, 0u);
  EXPECT_EQ(registry.counters().published, 3u);
}

TEST_F(RegistrySwapTest, PublishInvalidatesPlanCache) {
  // A cached skeleton embeds one version's estimate pool. After a publish,
  // the same template must re-plan under the new model — hits across a
  // version bump would serve stale estimates (the fss/canonical keys do not
  // encode the model version; the epoch bump is what protects them).
  model::ModelRegistry registry;
  PublishVersion(&registry, 0);
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 16;
  options.run_config = Config();
  options.model_registry = &registry;
  options.plan_cache_capacity = 64;
  EngineServer server(database_, opt::CostModel{}, Factory(), options);

  const qry::Query& query = (*workload_)[0].query;
  Result<RunStats> miss = server.RunSync(query);
  ASSERT_TRUE(miss.ok());
  Result<RunStats> hit = server.RunSync(query);
  ASSERT_TRUE(hit.ok());
  const auto warm = server.plan_cache()->counters();
  EXPECT_GE(warm.hits, 1u);
  const uint64_t invalidations_before = warm.invalidations;

  PublishVersion(&registry, 1);
  EXPECT_GT(server.plan_cache()->counters().invalidations,
            invalidations_before);
  EXPECT_EQ(server.plan_cache()->counters().size, 0u);

  Result<RunStats> after = server.RunSync(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().model_version, 2u);
  // Re-planned under v2, not served from the v1-era cache: the initial plan
  // (with its embedded estimates) matches the v2 pinned baseline exactly.
  EXPECT_EQ(StripPlanTimes(after.value().initial_plan),
            Baseline(2, 0).initial_plan);
  EXPECT_EQ(after.value().result_count, (*workload_)[0].FinalCard());
}

TEST_F(RegistrySwapTest, SaveLoadRoundTripServesIdentically) {
  // Registry persistence: SaveCurrent + LoadAndPublish restores a version
  // that serves bit-identically to the original.
  model::ModelRegistry registry;
  PublishVersion(&registry, 1);  // version seeds differ from config defaults
  const std::string dir = ::testing::TempDir() + "lpce_registry_roundtrip";
  ASSERT_TRUE(registry.SaveCurrent(dir).ok());

  model::ModelRegistry restored;
  model::TreeModelConfig config;
  config.feature_dim = encoder_->dim();
  config.dim = 16;
  config.embed_hidden = 16;
  config.out_hidden = 32;
  config.log_max_card = 18.0;
  config.seed = 999;  // init is irrelevant: params are loaded over it
  Result<uint64_t> loaded =
      restored.LoadAndPublish(dir, encoder_, config);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(), 1u);

  auto snapshot = restored.Current();
  ASSERT_NE(snapshot, nullptr);
  model::TreeModelEstimator initial("LPCE-I", snapshot->model.get(), database_);
  model::LpceREstimator refiner(snapshot->refiner.get(), database_);
  Engine engine(database_, opt::CostModel{});
  for (size_t q = 0; q < 10; ++q) {
    const Outcome outcome = Summarize(
        engine.RunQuery((*workload_)[q].query, &initial, &refiner, Config()));
    ExpectSameOutcome(Baseline(2, q), outcome,
                      "restored registry, query " + std::to_string(q));
  }
}

}  // namespace
}  // namespace lpce::eng
