// The training side of the online feedback loop (engine/finetune.h):
// fine-tuning on harvested post-drift feedback restores estimator accuracy
// (the EXPERIMENTS.md drift scenario), drift flags kick the background
// worker end-to-end (telemetry windows -> monitor -> listener -> publish),
// and a fine-tune racing a live workload never rejects or drops a query.
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "engine/drift_monitor.h"
#include "engine/engine.h"
#include "engine/finetune.h"
#include "engine/server.h"
#include "feedback/feedback_store.h"
#include "lpce/estimators.h"
#include "lpce/model_registry.h"
#include "lpce/tree_model.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace lpce::eng {
namespace {

model::TreeModelConfig TinyConfig(const model::FeatureEncoder& encoder,
                                  double log_max_card) {
  model::TreeModelConfig config;
  config.feature_dim = encoder.dim();
  config.dim = 16;
  config.embed_hidden = 16;
  config.out_hidden = 32;
  config.log_max_card = log_max_card;
  return config;
}

/// Median root q-error of `model` over `eval` (full-query estimate vs label).
double MedianRootQError(const model::TreeModel& model,
                        const db::Database& database,
                        const std::vector<wk::LabeledQuery>& eval) {
  model::TreeModelEstimator estimator("LPCE-I", &model, &database);
  std::vector<double> qerrors;
  for (const auto& labeled : eval) {
    const uint64_t truth = labeled.FinalCard();
    if (truth == 0) continue;
    estimator.PrepareQuery(labeled.query);
    const double est =
        std::max(1.0, estimator.EstimateSubset(labeled.query,
                                               labeled.query.AllRels()));
    qerrors.push_back(std::max(est / truth, truth / est));
  }
  EXPECT_GT(qerrors.size(), 20u);
  std::sort(qerrors.begin(), qerrors.end());
  return qerrors[qerrors.size() / 2];
}

void FillStore(fb::FeedbackStore* store,
               const std::vector<wk::LabeledQuery>& examples) {
  uint64_t fss = 1;
  for (const auto& labeled : examples) {
    fb::FeedbackQuery record;
    record.fss_hash = fss++;  // distinct templates: no cap eviction
    record.query = labeled.query;
    record.actuals.assign(labeled.true_cards.begin(),
                          labeled.true_cards.end());
    store->Append(record);
  }
}

TEST(FineTuneTest, DriftScenarioRecoversQError) {
  // The EXPERIMENTS.md data-drift scenario end to end: train on the original
  // distribution, append drifted rows, harvest ~200 post-drift queries into
  // the feedback store, fine-tune through the worker, and require the
  // published model to beat the stale one on post-drift data by a margin.
  common::SetGlobalPoolSize(4);
  db::SynthImdbOptions opts;
  opts.scale = 0.02;
  auto database = db::BuildSynthImdb(opts);
  stats::DatabaseStats stats;
  stats.Build(*database);
  model::FeatureEncoder encoder(&database->catalog(), &stats);

  wk::GeneratorOptions gen;
  gen.seed = 31;
  auto pre_train =
      wk::QueryGenerator(database.get(), gen).GenerateLabeled(160, 3, 6);
  const double log_max =
      std::log1p(static_cast<double>(wk::MaxCardinality(pre_train))) + 2.0;

  // Train to convergence: fine-tuning continues from settled weights (a
  // half-trained model recovers from *any* extra training, which would prove
  // nothing about the feedback loop).
  auto stale = std::make_shared<model::TreeModel>(
      &encoder, TinyConfig(encoder, log_max));
  model::TrainOptions topt;
  topt.epochs = 60;
  model::TrainTreeModel(stale.get(), *database, pre_train, topt);

  // The world changes: drifted rows append, the trained weights go stale.
  // (Encoder and statistics deliberately stay stale too — the feedback loop
  // adapts parameters, not features.)
  db::AppendSynthImdbDrift(database.get(), 0.8, 97);

  gen.seed = 631;
  auto post_feedback =
      wk::QueryGenerator(database.get(), gen).GenerateLabeled(200, 3, 6);
  gen.seed = 929;
  gen.require_nonempty = true;
  auto post_eval =
      wk::QueryGenerator(database.get(), gen).GenerateLabeled(60, 3, 6);

  fb::FeedbackStoreOptions store_options;
  store_options.per_template_cap = 4096;
  fb::FeedbackStore store(store_options);
  FillStore(&store, post_feedback);

  model::ModelRegistry registry;
  registry.Publish(stale, nullptr, "initial");

  FineTuneOptions ft;  // the documented recipe: 10 epochs, lr 5e-4
  FineTuneWorker worker(&registry, &store, database.get(), ft);
  const uint64_t published = worker.RunOnce();
  EXPECT_EQ(published, 2u);
  EXPECT_EQ(worker.counters().published, 1u);

  auto tuned = registry.Current();
  ASSERT_NE(tuned, nullptr);
  EXPECT_EQ(tuned->version, 2u);
  EXPECT_EQ(tuned->tag, "finetune@v1");

  const double stale_q = MedianRootQError(*stale, *database, post_eval);
  const double tuned_q = MedianRootQError(*tuned->model, *database, post_eval);
  // Fine-tuning must recover a real margin on post-drift data, not a
  // rounding blip. Training is bit-deterministic at fixed seeds (the repo's
  // standing contract), so the margin only guards cross-toolchain FP skew:
  // measured ~0.74x here (11.9 -> 8.9), asserted at 0.85x.
  EXPECT_LT(tuned_q, stale_q * 0.85)
      << "stale median q-error " << stale_q << " vs tuned " << tuned_q;
  common::SetGlobalPoolSize(0);
}

TEST(FineTuneTest, DriftFlagsKickBackgroundWorkerToPublish) {
  // The trigger edge: telemetry windows complete -> DriftMonitor::Run flags
  // the template -> global listener kicks the worker -> a new version
  // publishes, all without any manual Kick.
  common::SetGlobalPoolSize(2);
  db::SynthImdbOptions opts;
  opts.scale = 0.01;
  auto database = db::BuildSynthImdb(opts);
  stats::DatabaseStats stats;
  stats.Build(*database);
  model::FeatureEncoder encoder(&database->catalog(), &stats);
  wk::GeneratorOptions gen;
  gen.seed = 11;
  auto train =
      wk::QueryGenerator(database.get(), gen).GenerateLabeled(40, 2, 3);

  auto base = std::make_shared<model::TreeModel>(
      &encoder,
      TinyConfig(encoder,
                 std::log1p(static_cast<double>(wk::MaxCardinality(train)))));
  model::ModelRegistry registry;
  registry.Publish(base, nullptr, "initial");

  fb::FeedbackStoreOptions store_options;
  store_options.per_template_cap = 4096;
  fb::FeedbackStore store(store_options);
  FillStore(&store, train);

  FineTuneOptions ft;
  ft.epochs = 1;  // the kick path is under test, not convergence
  ft.min_records = 1;
  FineTuneWorker worker(&registry, &store, database.get(), ft);
  worker.Start();

  // Two completed windows for template 42: a tame baseline, then a drifted
  // current window (every q-error 10x the baseline's).
  const bool was_enabled = common::TelemetryEnabled();
  common::TelemetryOptions telemetry;
  telemetry.window_size = 4;
  telemetry.mode = common::TelemetryMode::kDeterministic;
  auto& hub = common::TelemetryHub::Global();
  hub.Configure(telemetry);
  common::SetTelemetryEnabled(true);
  auto publish_window = [&hub](float qerror) {
    for (int i = 0; i < 4; ++i) {
      common::TelemetryRecord record;
      record.fss_hash = 42;
      record.num_qerrors = 2;
      record.qerrors[0] = qerror;
      record.qerrors[1] = qerror + 0.5f;
      record.max_qerror = qerror + 0.5f;
      ASSERT_TRUE(hub.Publish(record));
    }
    hub.DrainNow();
  };
  publish_window(1.5f);   // baseline window
  publish_window(15.0f);  // drifted window

  DriftMonitorOptions monitor_options;
  monitor_options.ratio_threshold = 2.0;
  monitor_options.min_samples = 8;  // 4 records x 2 q-errors per window
  monitor_options.quantile = 0.5;
  DriftMonitor(monitor_options).Run(hub);

  // The listener ran on this thread (Run is synchronous), so the kick has
  // landed; the publish itself happens on the worker thread — poll for it.
  EXPECT_GE(worker.counters().kicks, 1u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (registry.CurrentVersionNumber() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(registry.CurrentVersionNumber(), 2u);
  worker.Stop();
  EXPECT_GE(worker.counters().published, 1u);
  EXPECT_EQ(registry.Current()->tag, "finetune@v1");

  common::SetTelemetryEnabled(was_enabled);
  hub.Configure(common::TelemetryOptions::FromEnv());
  common::SetGlobalPoolSize(0);
}

TEST(FineTuneTest, BackgroundFineTuneDropsNoConcurrentQueries) {
  // Zero-downtime contract: fine-tunes publishing mid-workload never reject
  // or drop a query; workers absorb the new versions between queries.
  common::SetGlobalPoolSize(4);
  db::SynthImdbOptions opts;
  opts.scale = 0.01;
  auto database = db::BuildSynthImdb(opts);
  stats::DatabaseStats stats;
  stats.Build(*database);
  model::FeatureEncoder encoder(&database->catalog(), &stats);
  wk::GeneratorOptions gen;
  gen.seed = 505;
  auto workload =
      wk::QueryGenerator(database.get(), gen).GenerateLabeled(40, 2, 3);

  auto base = std::make_shared<model::TreeModel>(
      &encoder,
      TinyConfig(encoder, std::log1p(static_cast<double>(
                              wk::MaxCardinality(workload)))));
  model::ModelRegistry registry;
  registry.Publish(base, nullptr, "initial");

  fb::FeedbackStoreOptions store_options;
  store_options.per_template_cap = 4096;
  fb::FeedbackStore store(store_options);

  // The server's own worker reads the fine-tune recipe from the env.
  ::setenv("LPCE_FINETUNE_EPOCHS", "1", 1);
  ::setenv("LPCE_FINETUNE_MIN_RECORDS", "1", 1);
  {
    ServerOptions options;
    options.num_workers = 4;
    options.max_queue = workload.size();
    options.run_config.enable_reopt = true;
    options.run_config.qerror_threshold = 10.0;
    options.model_registry = &registry;
    options.feedback_store = &store;
    options.enable_finetune = true;
    const db::Database* db = database.get();
    EngineServer server(
        db, opt::CostModel{},
        [db](int, const model::ModelVersion& version) {
          EngineServer::Session session;
          session.initial = std::make_unique<model::TreeModelEstimator>(
              "LPCE-I", version.model.get(), db);
          return session;
        },
        options);
    ASSERT_NE(server.finetune_worker(), nullptr);

    std::vector<std::shared_future<RunStats>> futures;
    for (const auto& labeled : workload) {
      auto admitted = server.Submit(labeled.query);
      ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
      futures.push_back(admitted.value());
    }
    // Kick fine-tunes while the queue drains: the store fills as queries
    // complete, so at least one run finds records and publishes.
    while (server.counters().completed < workload.size() / 2) {
      std::this_thread::yield();
    }
    server.finetune_worker()->Kick();
    for (size_t q = 0; q < futures.size(); ++q) {
      const RunStats stats_q = futures[q].get();
      EXPECT_EQ(stats_q.result_count, workload[q].FinalCard()) << "query " << q;
      EXPECT_GE(stats_q.model_version, 1u);
    }
    server.finetune_worker()->Kick();  // one more with the full store
    server.Shutdown();  // stops the worker; an in-progress run publishes first

    const EngineServer::Counters counters = server.counters();
    EXPECT_EQ(counters.submitted, workload.size());
    EXPECT_EQ(counters.completed, workload.size());
    EXPECT_EQ(counters.rejected, 0u);
    EXPECT_EQ(store.counters().appended, workload.size());
  }
  // At least one fine-tune published (version > initial), and every version
  // a query reported actually exists in the registry's history.
  EXPECT_GE(registry.CurrentVersionNumber(), 2u);
  EXPECT_EQ(registry.Current()->tag.rfind("finetune@", 0), 0u);
  ::unsetenv("LPCE_FINETUNE_EPOCHS");
  ::unsetenv("LPCE_FINETUNE_MIN_RECORDS");
  common::SetGlobalPoolSize(0);
}

}  // namespace
}  // namespace lpce::eng
