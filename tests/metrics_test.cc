// MetricsRegistry unit tests: identity/caching semantics, exact counting
// under concurrent ThreadPool updates, histogram bucketing, and the JSON
// dump's structure.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace lpce::common {
namespace {

TEST(MetricsTest, RegistryReturnsStablePointers) {
  auto& registry = MetricsRegistry::Global();
  Counter* c1 = registry.counter("test.stable.counter");
  Counter* c2 = registry.counter("test.stable.counter");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = registry.gauge("test.stable.gauge");
  EXPECT_EQ(g1, registry.gauge("test.stable.gauge"));
  Histogram* h1 = registry.histogram("test.stable.histogram");
  EXPECT_EQ(h1, registry.histogram("test.stable.histogram"));
  // Bounds are fixed at creation; a second lookup ignores its argument.
  EXPECT_EQ(h1, registry.histogram("test.stable.histogram", {1.0, 2.0}));
  EXPECT_EQ(h1->bounds(), DefaultLatencyBounds());
}

TEST(MetricsTest, ConcurrentIncrementsCountExactly) {
  Counter* counter =
      MetricsRegistry::Global().counter("test.concurrent.counter");
  counter->Reset();
  Histogram* histogram =
      MetricsRegistry::Global().histogram("test.concurrent.histogram");
  histogram->Reset();
  ThreadPool pool(8);
  constexpr size_t kUpdates = 100000;
  pool.ParallelFor(0, kUpdates, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      counter->Increment();
      histogram->Observe(1e-5);
    }
  });
  EXPECT_EQ(counter->value(), kUpdates);
  EXPECT_EQ(histogram->count(), kUpdates);
  EXPECT_NEAR(histogram->sum(), 1e-5 * kUpdates, 1e-3);
}

TEST(MetricsTest, HistogramBucketsObservations) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (<= 1)
  histogram.Observe(1.0);    // bucket 0 (inclusive upper bound)
  histogram.Observe(5.0);    // bucket 1
  histogram.Observe(500.0);  // overflow bucket
  const std::vector<uint64_t> expected = {2, 1, 0, 1};
  EXPECT_EQ(histogram.counts(), expected);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 506.5);
}

TEST(MetricsTest, GaugeIsLastWriteWins) {
  Gauge gauge;
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.25);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(MetricsTest, ToJsonHasStableStructure) {
  auto& registry = MetricsRegistry::Global();
  registry.counter("test.json.b")->Reset();
  registry.counter("test.json.a")->Increment(3);
  const std::string json = registry.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Top-level sections in fixed order.
  const size_t counters = json.find("\"counters\"");
  const size_t gauges = json.find("\"gauges\"");
  const size_t histograms = json.find("\"histograms\"");
  ASSERT_NE(counters, std::string::npos);
  ASSERT_NE(gauges, std::string::npos);
  ASSERT_NE(histograms, std::string::npos);
  EXPECT_LT(counters, gauges);
  EXPECT_LT(gauges, histograms);
  // Names sorted within a section.
  const size_t a = json.find("\"test.json.a\"");
  const size_t b = json.find("\"test.json.b\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_NE(json.find("\"test.json.a\":3"), std::string::npos) << json;
}

TEST(MetricsTest, SnapshotDeltaReportsMovementWithoutReset) {
  auto& registry = MetricsRegistry::Global();
  Counter* counter = registry.counter("test.delta.counter");
  Gauge* gauge = registry.gauge("test.delta.gauge");
  Histogram* histogram = registry.histogram("test.delta.histogram");
  counter->Increment(10);
  histogram->Observe(1e-5);
  gauge->Set(1.0);

  const MetricsSnapshot before = registry.Snapshot();
  counter->Increment(5);
  histogram->Observe(1e-5);
  histogram->Observe(2.0);
  gauge->Set(7.5);
  const MetricsSnapshot after = registry.Snapshot();

  const MetricsSnapshot delta = Delta(before, after);
  EXPECT_EQ(delta.counters.at("test.delta.counter"), 5u);
  // Gauges are last-write-wins: the delta carries the `after` value.
  EXPECT_DOUBLE_EQ(delta.gauges.at("test.delta.gauge"), 7.5);
  const auto& h = delta.histograms.at("test.delta.histogram");
  EXPECT_EQ(h.count, 2u);
  EXPECT_NEAR(h.sum, 2.0 + 1e-5, 1e-9);
  uint64_t bucket_total = 0;
  for (uint64_t b : h.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 2u);
  // The live instruments kept accumulating — nothing was reset.
  EXPECT_EQ(counter->value(), 15u);

  // An instrument absent from `before` counts from zero.
  MetricsSnapshot empty;
  const MetricsSnapshot from_zero = Delta(empty, after);
  EXPECT_EQ(from_zero.counters.at("test.delta.counter"), 15u);

  const std::string json = delta.ToJson();
  EXPECT_NE(json.find("\"test.delta.counter\":5"), std::string::npos) << json;
}

TEST(MetricsTest, ResetAllZeroesEverything) {
  auto& registry = MetricsRegistry::Global();
  Counter* counter = registry.counter("test.reset.counter");
  Gauge* gauge = registry.gauge("test.reset.gauge");
  Histogram* histogram = registry.histogram("test.reset.histogram");
  counter->Increment(7);
  gauge->Set(2.0);
  histogram->Observe(0.1);
  registry.ResetAll();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_DOUBLE_EQ(histogram->sum(), 0.0);
}

}  // namespace
}  // namespace lpce::common
