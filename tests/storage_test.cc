// Unit tests for schema/catalog, tables, indexes, and the synthetic dataset.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/database.h"

namespace lpce::db {
namespace {

TEST(CatalogTest, GlobalColumnIdsAreDense) {
  Catalog cat;
  cat.AddTable({"a", {{"x"}, {"y"}}});
  cat.AddTable({"b", {{"z"}}});
  EXPECT_EQ(cat.TotalColumns(), 3);
  EXPECT_EQ(cat.GlobalColumnId({0, 0}), 0);
  EXPECT_EQ(cat.GlobalColumnId({0, 1}), 1);
  EXPECT_EQ(cat.GlobalColumnId({1, 0}), 2);
  EXPECT_EQ(cat.FindTable("b"), 1);
  EXPECT_EQ(cat.FindTable("nope"), -1);
  EXPECT_EQ(cat.FindColumn(0, "y"), 1);
}

TEST(CatalogTest, EdgesOfTable) {
  Catalog cat;
  cat.AddTable({"a", {{"id"}}});
  cat.AddTable({"b", {{"a_id"}}});
  cat.AddTable({"c", {{"a_id"}}});
  cat.AddJoinEdge({1, 0}, {0, 0});
  cat.AddJoinEdge({2, 0}, {0, 0});
  EXPECT_EQ(cat.EdgesOfTable(0).size(), 2u);
  EXPECT_EQ(cat.EdgesOfTable(1).size(), 1u);
}

TEST(TableTest, AppendAndRead) {
  Table t(2);
  t.AppendRow({1, 10});
  t.AppendRow({2, 20});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.at(1, 1), 20);
}

TEST(HashIndexTest, LookupFindsAllMatches) {
  Table t(1);
  for (int64_t v : {5, 3, 5, 7, 5}) t.AppendRow({v});
  HashIndex idx(t, 0);
  EXPECT_EQ(idx.Lookup(5).size(), 3u);
  EXPECT_EQ(idx.Lookup(3).size(), 1u);
  EXPECT_TRUE(idx.Lookup(99).empty());
  EXPECT_EQ(idx.num_distinct(), 3u);
}

TEST(SortedIndexTest, RangeQueriesMatchBruteForce) {
  Rng rng(123);
  Table t(1);
  for (int i = 0; i < 500; ++i) t.AppendRow({rng.UniformInt(0, 50)});
  SortedIndex idx(t, 0);
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t lo = rng.UniformInt(-5, 55);
    const int64_t hi = rng.UniformInt(lo, 60);
    size_t expect = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      if (t.at(r, 0) >= lo && t.at(r, 0) <= hi) ++expect;
    }
    EXPECT_EQ(idx.RangeCount(lo, hi), expect);
    EXPECT_EQ(idx.RangeLookup(lo, hi).size(), expect);
  }
  EXPECT_EQ(idx.RangeCount(10, 5), 0u);
}

TEST(SynthImdbTest, SchemaShape) {
  SynthImdbOptions opts;
  opts.scale = 0.05;
  auto database = BuildSynthImdb(opts);
  const Catalog& cat = database->catalog();
  EXPECT_EQ(cat.num_tables(), 10);
  EXPECT_EQ(cat.join_edges().size(), 10u);
  EXPECT_GE(cat.TotalColumns(), 30);
  EXPECT_TRUE(database->indexes_built());
}

TEST(SynthImdbTest, ForeignKeysResolve) {
  SynthImdbOptions opts;
  opts.scale = 0.05;
  auto database = BuildSynthImdb(opts);
  const Catalog& cat = database->catalog();
  // Every FK edge: all values on the FK side exist on the PK side.
  for (const auto& edge : cat.join_edges()) {
    const Table& fk_table = database->table(edge.left.table);
    const HashIndex& pk_index = database->hash_index(edge.right);
    const auto& fk_col = fk_table.column(edge.left.column);
    size_t misses = 0;
    for (int64_t v : fk_col) {
      if (pk_index.Lookup(v).empty()) ++misses;
    }
    EXPECT_EQ(misses, 0u) << "dangling FKs on edge "
                          << cat.ColumnName(edge.left) << " = "
                          << cat.ColumnName(edge.right);
  }
}

TEST(SynthImdbTest, FanoutsAreSkewed) {
  SynthImdbOptions opts;
  opts.scale = 0.2;
  auto database = BuildSynthImdb(opts);
  const Catalog& cat = database->catalog();
  const int32_t ci = cat.FindTable("cast_info");
  ASSERT_GE(ci, 0);
  const Table& cast_info = database->table(ci);
  // Count fanout per movie. Fanouts are Zipf-skewed but capped (to keep
  // multi-satellite joins bounded): the max should still clearly exceed the
  // mean, and the hottest 10% of movies should hold an outsized row share.
  std::unordered_map<int64_t, size_t> fanout;
  for (int64_t m : cast_info.column(1)) ++fanout[m];
  size_t max_fanout = 0;
  std::vector<size_t> counts;
  for (const auto& [m, f] : fanout) {
    max_fanout = std::max(max_fanout, f);
    counts.push_back(f);
  }
  const double mean = static_cast<double>(cast_info.num_rows()) /
                      static_cast<double>(fanout.size());
  EXPECT_GT(static_cast<double>(max_fanout), 2.0 * mean);
  std::sort(counts.rbegin(), counts.rend());
  size_t top_rows = 0;
  for (size_t i = 0; i < counts.size() / 10; ++i) top_rows += counts[i];
  EXPECT_GT(static_cast<double>(top_rows),
            0.2 * static_cast<double>(cast_info.num_rows()));
}

TEST(SynthImdbTest, DeterministicForSameSeed) {
  SynthImdbOptions opts;
  opts.scale = 0.05;
  auto a = BuildSynthImdb(opts);
  auto b = BuildSynthImdb(opts);
  const int32_t t = a->catalog().FindTable("title");
  ASSERT_EQ(a->table(t).num_rows(), b->table(t).num_rows());
  for (size_t c = 0; c < a->table(t).num_columns(); ++c) {
    EXPECT_EQ(a->table(t).column(c), b->table(t).column(c));
  }
}

TEST(SynthImdbTest, ScaleChangesRowCounts) {
  SynthImdbOptions small;
  small.scale = 0.05;
  SynthImdbOptions big;
  big.scale = 0.1;
  auto a = BuildSynthImdb(small);
  auto b = BuildSynthImdb(big);
  const int32_t t = a->catalog().FindTable("cast_info");
  EXPECT_LT(a->table(t).num_rows(), b->table(t).num_rows());
}

TEST(ZipfSamplerTest, HeavySkewAtLowRanks) {
  Rng rng(7);
  ZipfSampler zipf(1000, 1.2, &rng);
  size_t low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample() < 10) ++low;
  }
  // With s=1.2 the top-10 ranks carry far more than 10/1000 of the mass.
  EXPECT_GT(low, static_cast<size_t>(n) / 5);
}

}  // namespace
}  // namespace lpce::db
