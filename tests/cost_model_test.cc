// Cost model tests: the decision boundaries that drive the paper's
// plan-quality phenomena (nested loop only for tiny outers, index scans only
// for selective predicates, costs monotone in input sizes).
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/fpclass.h"
#include "optimizer/cost_model.h"

namespace lpce::opt {
namespace {

TEST(CostModelTest, JoinCostsMonotoneInInputs) {
  CostModel cost;
  for (auto op : {exec::PhysOp::kHashJoin, exec::PhysOp::kMergeJoin,
                  exec::PhysOp::kNestLoopJoin}) {
    double prev = -1.0;
    for (double n : {10.0, 100.0, 1000.0, 10000.0}) {
      const double c = cost.JoinCost(op, n, n, n);
      EXPECT_GT(c, prev) << exec::PhysOpName(op);
      prev = c;
    }
  }
}

TEST(CostModelTest, NestedLoopCrossoverIsAtSmallOuter) {
  // There must be a crossover outer size below which NL beats hash join
  // (that is what makes underestimates dangerous), and it must be small
  // relative to the inner size.
  CostModel cost;
  const double inner = 5000.0;
  double crossover = -1.0;
  for (double outer = 1; outer <= inner; outer *= 2) {
    const double nl = cost.JoinCost(exec::PhysOp::kNestLoopJoin, outer, inner, 10);
    const double hash = cost.JoinCost(exec::PhysOp::kHashJoin, outer, inner, 10);
    if (nl >= hash) {
      crossover = outer;
      break;
    }
  }
  ASSERT_GT(crossover, 1.0) << "NL should win for outer=1";
  EXPECT_LT(crossover, inner / 10.0) << "NL must lose long before outer~inner";
}

TEST(CostModelTest, MergeJoinBeatsHashOnlyViaSortTradeoff) {
  CostModel cost;
  // Merge join pays n log n sorts; for equal inputs hash join (linear build
  // + probe) should win at scale.
  const double n = 100000.0;
  EXPECT_LT(cost.JoinCost(exec::PhysOp::kHashJoin, n, n, n),
            cost.JoinCost(exec::PhysOp::kMergeJoin, n, n, n));
}

TEST(CostModelTest, IndexScanWinsOnlyWhenSelective) {
  CostModel cost;
  const double table_rows = 100000.0;
  const double seq = cost.SeqScanCost(table_rows, 1);
  // Very selective: index wins.
  EXPECT_LT(cost.IndexScanCost(50.0, 0), seq);
  // Unselective: index loses (per-tuple index cost > seq cost).
  EXPECT_GT(cost.IndexScanCost(table_rows * 0.9, 0), seq);
}

TEST(CostModelTest, PseudoScanIsCheaperThanRecomputation) {
  // Re-reading a materialized intermediate must be cheaper than any join
  // that could have produced it (otherwise re-optimization would always
  // prefer restarting).
  CostModel cost;
  const double rows = 10000.0;
  EXPECT_LT(cost.PseudoScanCost(rows),
            cost.JoinCost(exec::PhysOp::kHashJoin, rows, rows, rows));
  EXPECT_LT(cost.PseudoScanCost(rows), cost.SeqScanCost(rows, 0));
}

TEST(CostModelTest, OutputCardinalityMattersForAllJoins) {
  CostModel cost;
  for (auto op : {exec::PhysOp::kHashJoin, exec::PhysOp::kMergeJoin,
                  exec::PhysOp::kNestLoopJoin}) {
    EXPECT_GT(cost.JoinCost(op, 1000, 1000, 1e6),
              cost.JoinCost(op, 1000, 1000, 10))
        << exec::PhysOpName(op);
  }
}

TEST(CostModelTest, DegenerateCardinalitiesNeverProduceNonFiniteCosts) {
  // A clamped-to-zero estimate meeting an infinite one produces inf * 0 =
  // NaN in NL's outer*inner product; a NaN cost breaks DP entry comparison
  // (cost < best is false both ways, so the winner is arbitrary). Every cost
  // must come back finite and non-negative for every degenerate input.
  // common::IsFinite (bit-level) rather than std::isfinite: Release builds
  // use -ffast-math, which folds std::isfinite to `true`.
  CostModel cost;
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double degenerate[] = {0.0, -5.0, inf, -inf, nan, 1000.0};
  for (auto op : {exec::PhysOp::kHashJoin, exec::PhysOp::kMergeJoin,
                  exec::PhysOp::kNestLoopJoin}) {
    for (double outer : degenerate) {
      for (double inner : degenerate) {
        for (double out : degenerate) {
          const double c = cost.JoinCost(op, outer, inner, out);
          EXPECT_TRUE(common::IsFinite(c) && c >= 0.0)
              << exec::PhysOpName(op) << " outer=" << outer
              << " inner=" << inner << " out=" << out << " -> " << c;
        }
      }
    }
  }
  for (double rows : degenerate) {
    EXPECT_TRUE(common::IsFinite(cost.SeqScanCost(rows, 2)));
    EXPECT_TRUE(common::IsFinite(cost.IndexScanCost(rows, 1)));
    EXPECT_TRUE(common::IsFinite(cost.PseudoScanCost(rows)));
  }
}

TEST(CostModelTest, ZeroRowJoinsStayComparable) {
  // Zero-row inputs are legitimate (empty scans); their costs must still be
  // totally ordered so the DP can deterministically pick the cheaper entry.
  CostModel cost;
  const double zero_nl = cost.JoinCost(exec::PhysOp::kNestLoopJoin, 0.0, 0.0, 0.0);
  const double zero_hash = cost.JoinCost(exec::PhysOp::kHashJoin, 0.0, 0.0, 0.0);
  EXPECT_TRUE(common::IsFinite(zero_nl));
  EXPECT_TRUE(common::IsFinite(zero_hash));
  // And a real plan always beats the sanitized infinite sentinel.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_LT(cost.JoinCost(exec::PhysOp::kHashJoin, 100.0, 100.0, 100.0),
            cost.JoinCost(exec::PhysOp::kNestLoopJoin, inf, inf, inf));
}

TEST(CostModelTest, ResidualPredicatesAddCost) {
  // Extra cut edges (multigraph queries) are evaluated as residual filters
  // on candidate matches: more residuals must cost strictly more.
  CostModel cost;
  for (auto op : {exec::PhysOp::kHashJoin, exec::PhysOp::kMergeJoin,
                  exec::PhysOp::kNestLoopJoin}) {
    EXPECT_GT(cost.JoinCost(op, 1000, 1000, 100, 2),
              cost.JoinCost(op, 1000, 1000, 100, 0))
        << exec::PhysOpName(op);
  }
}

TEST(CostModelTest, CustomParamsAreRespected) {
  CostParams params;
  params.nl_pair = 100.0;  // make NL absurdly expensive
  CostModel cost(params);
  EXPECT_GT(cost.JoinCost(exec::PhysOp::kNestLoopJoin, 10, 10, 1),
            cost.JoinCost(exec::PhysOp::kHashJoin, 10, 10, 1));
}

}  // namespace
}  // namespace lpce::opt
