// Profiler unit tests: scope nesting, self-vs-total accounting, multi-thread
// merge, off-mode no-op, Reset semantics, JSON/collapsed serialization, and
// the ValidateProfileJson schema checker.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/profiler.h"

namespace lpce::common {
namespace {

/// Each test runs with profiling on and a clean tree, restoring the off
/// default afterwards so unrelated tests stay unprofiled.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetProfilerEnabled(true);
    Profiler::Global().Reset();
  }
  void TearDown() override {
    SetProfilerEnabled(false);
    Profiler::Global().Reset();
  }
};

void SpinFor(std::chrono::microseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST_F(ProfilerTest, RecordsNestedScopes) {
  for (int i = 0; i < 3; ++i) {
    LPCE_PROFILE_SCOPE("outer");
    SpinFor(std::chrono::microseconds(200));
    {
      LPCE_PROFILE_SCOPE("inner");
      SpinFor(std::chrono::microseconds(100));
    }
  }
  const ProfileNode merged = Profiler::Global().Merged();
  ASSERT_EQ(merged.children.count("outer"), 1u);
  const ProfileNode& outer = merged.children.at("outer");
  EXPECT_EQ(outer.count, 3u);
  ASSERT_EQ(outer.children.count("inner"), 1u);
  const ProfileNode& inner = outer.children.at("inner");
  EXPECT_EQ(inner.count, 3u);
  // The inner scope's time nests inside the outer total.
  EXPECT_GE(outer.total_ns, inner.total_ns);
  EXPECT_GT(inner.total_ns, 0u);
  EXPECT_LE(inner.min_ns, inner.max_ns);
}

TEST_F(ProfilerTest, SelfTimeExcludesChildren) {
  {
    LPCE_PROFILE_SCOPE("parent");
    SpinFor(std::chrono::microseconds(300));
    {
      LPCE_PROFILE_SCOPE("child");
      SpinFor(std::chrono::microseconds(300));
    }
  }
  const ProfileNode merged = Profiler::Global().Merged();
  const ProfileNode& parent = merged.children.at("parent");
  const ProfileNode& child = parent.children.at("child");
  EXPECT_EQ(parent.SelfNs(), parent.total_ns - child.total_ns);
  EXPECT_LT(parent.SelfNs(), parent.total_ns);
  // Leaf self time is its total.
  EXPECT_EQ(child.SelfNs(), child.total_ns);
}

TEST_F(ProfilerTest, SameScopeNameAggregatesAcrossCallSites) {
  for (int i = 0; i < 5; ++i) {
    LPCE_PROFILE_SCOPE("repeat");
  }
  {
    // A different call site (different string object, same contents) lands in
    // the same merged node.
    LPCE_PROFILE_SCOPE("repeat");
  }
  const ProfileNode merged = Profiler::Global().Merged();
  EXPECT_EQ(merged.children.at("repeat").count, 6u);
}

TEST_F(ProfilerTest, MergesAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kIterations = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIterations; ++i) {
        LPCE_PROFILE_SCOPE("worker");
        LPCE_PROFILE_SCOPE("task");
      }
    });
  }
  for (auto& t : threads) t.join();
  // Threads have exited: their trees were folded into the retired tree.
  const ProfileNode merged = Profiler::Global().Merged();
  const ProfileNode& worker = merged.children.at("worker");
  EXPECT_EQ(worker.count, static_cast<uint64_t>(kThreads * kIterations));
  EXPECT_EQ(worker.children.at("task").count,
            static_cast<uint64_t>(kThreads * kIterations));
}

TEST_F(ProfilerTest, MergedIncludesLiveThreads) {
  // The calling thread never exits during the test; its tree must still show
  // up in Merged().
  {
    LPCE_PROFILE_SCOPE("live_scope");
  }
  const ProfileNode merged = Profiler::Global().Merged();
  EXPECT_EQ(merged.children.count("live_scope"), 1u);
}

TEST_F(ProfilerTest, DisabledRecordsNothing) {
  SetProfilerEnabled(false);
  {
    LPCE_PROFILE_SCOPE("invisible");
  }
  SetProfilerEnabled(true);
  const ProfileNode merged = Profiler::Global().Merged();
  EXPECT_EQ(merged.children.count("invisible"), 0u);
}

TEST_F(ProfilerTest, ResetDropsRecordedData) {
  {
    LPCE_PROFILE_SCOPE("before_reset");
  }
  Profiler::Global().Reset();
  EXPECT_TRUE(Profiler::Global().Merged().children.empty());
  {
    LPCE_PROFILE_SCOPE("after_reset");
  }
  const ProfileNode merged = Profiler::Global().Merged();
  EXPECT_EQ(merged.children.count("before_reset"), 0u);
  EXPECT_EQ(merged.children.count("after_reset"), 1u);
}

TEST_F(ProfilerTest, JsonValidatesAndIsDeterministicInStructure) {
  {
    LPCE_PROFILE_SCOPE("b_scope");
  }
  {
    LPCE_PROFILE_SCOPE("a_scope");
  }
  const std::string json = Profiler::Global().ToJson();
  EXPECT_TRUE(ValidateProfileJson(json).ok()) << json;
  // Children sort by name: a_scope serializes before b_scope.
  EXPECT_LT(json.find("a_scope"), json.find("b_scope"));
}

TEST_F(ProfilerTest, CollapsedStacksJoinPathsWithSemicolons) {
  {
    LPCE_PROFILE_SCOPE("top");
    LPCE_PROFILE_SCOPE("mid");
    LPCE_PROFILE_SCOPE("leaf");
  }
  const std::string collapsed = Profiler::Global().ToCollapsed();
  EXPECT_NE(collapsed.find("top;mid;leaf "), std::string::npos) << collapsed;
}

TEST_F(ProfilerTest, WriteProfileFilesEmitsBothArtifacts) {
  {
    LPCE_PROFILE_SCOPE("artifact");
  }
  const std::string dir = ::testing::TempDir() + "/lpce_profiler_test";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(WriteProfileFiles(dir).ok());
  std::ifstream json_in(dir + "/profile.json");
  ASSERT_TRUE(json_in.good());
  std::ostringstream buf;
  buf << json_in.rdbuf();
  EXPECT_TRUE(ValidateProfileJson(buf.str()).ok());
  EXPECT_TRUE(std::filesystem::exists(dir + "/profile.collapsed"));
  std::filesystem::remove_all(dir);
}

TEST_F(ProfilerTest, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(ValidateProfileJson("not json").ok());
  EXPECT_FALSE(ValidateProfileJson("{}").ok());
  EXPECT_FALSE(
      ValidateProfileJson(R"({"schema_version":2,"unit":"ns","roots":[]})")
          .ok());
  EXPECT_FALSE(
      ValidateProfileJson(R"({"schema_version":1,"unit":"ms","roots":[]})")
          .ok());
  // self_ns > total_ns.
  EXPECT_FALSE(ValidateProfileJson(
                   R"({"schema_version":1,"unit":"ns","roots":[{"name":"x",)"
                   R"("count":1,"total_ns":5,"self_ns":9,"min_ns":5,)"
                   R"("max_ns":5,"children":[]}]})")
                   .ok());
  // Children out of name order.
  EXPECT_FALSE(ValidateProfileJson(
                   R"({"schema_version":1,"unit":"ns","roots":[)"
                   R"({"name":"b","count":1,"total_ns":1,"self_ns":1,)"
                   R"("min_ns":1,"max_ns":1,"children":[]},)"
                   R"({"name":"a","count":1,"total_ns":1,"self_ns":1,)"
                   R"("min_ns":1,"max_ns":1,"children":[]}]})")
                   .ok());
  EXPECT_TRUE(ValidateProfileJson(
                  R"({"schema_version":1,"unit":"ns","roots":[]})")
                  .ok());
}

}  // namespace
}  // namespace lpce::common
