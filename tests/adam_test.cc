// Adam regression: bias corrections must track the double-precision
// reference even at large step counts. The float-pow version drifted from
// the reference at beta2 = 0.999 (1 - beta2^t is a near-cancellation until t
// is in the thousands); the fix computes bc1/bc2 in double.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/adam.h"

namespace lpce::nn {
namespace {

// Deterministic per-step gradient pattern.
float GradAt(int64_t t, size_t i) {
  return static_cast<float>(((t * 31 + static_cast<int64_t>(i) * 17) % 101 - 50)) /
         50.0f;
}

TEST(AdamTest, TenThousandStepsMatchDoubleReference) {
  const size_t n = 8;
  const int64_t steps = 10000;
  const Adam::Options opts;  // defaults: lr 1e-3, betas 0.9/0.999, eps 1e-8

  Rng rng(3);
  ParamStore store;
  Tensor param = store.GetOrCreate("w", 1, n, 0.5f, &rng);
  const Matrix initial = param->value();
  Adam adam(&store);

  // Reference: identical float state arithmetic, bias corrections computed
  // in double — exactly the contract Adam::Step must honor.
  std::vector<float> ref(n), m(n, 0.0f), v(n, 0.0f);
  for (size_t i = 0; i < n; ++i) ref[i] = initial.at(0, i);

  for (int64_t t = 1; t <= steps; ++t) {
    for (size_t i = 0; i < n; ++i) {
      param->grad().at(0, i) = GradAt(t, i);
    }
    adam.Step();

    const float bc1 = static_cast<float>(
        1.0 - std::pow(static_cast<double>(opts.beta1), static_cast<double>(t)));
    const float bc2 = static_cast<float>(
        1.0 - std::pow(static_cast<double>(opts.beta2), static_cast<double>(t)));
    for (size_t i = 0; i < n; ++i) {
      const float g = GradAt(t, i);
      m[i] = opts.beta1 * m[i] + (1.0f - opts.beta1) * g;
      v[i] = opts.beta2 * v[i] + (1.0f - opts.beta2) * g * g;
      const float m_hat = m[i] / bc1;
      const float v_hat = v[i] / bc2;
      ref[i] -= opts.lr * m_hat / (std::sqrt(v_hat) + opts.eps);
    }
  }

  EXPECT_EQ(adam.steps(), steps);
  for (size_t i = 0; i < n; ++i) {
    // The states are float on both sides; only rounding/contraction noise may
    // differ. The old float-pow corrections drifted far beyond this band in
    // the early steps where 1 - beta2^t is a near-cancellation.
    EXPECT_NEAR(param->value().at(0, i), ref[i], 1e-5f) << "element " << i;
  }
}

TEST(AdamTest, EarlyStepBiasCorrectionIsExact) {
  // After exactly one step with gradient g, m_hat = g and v_hat = g^2, so the
  // update is lr * g / (|g| + eps) — any bias-correction error shows up
  // directly. Checks the cancellation-prone small-t regime.
  Rng rng(4);
  ParamStore store;
  Tensor param = store.GetOrCreate("w", 1, 1, 0.0f, &rng);
  param->mutable_value().at(0, 0) = 1.0f;
  Adam::Options opts;
  opts.lr = 0.01f;
  Adam adam(&store, opts);
  param->grad().at(0, 0) = 0.5f;
  adam.Step();
  EXPECT_NEAR(param->value().at(0, 0), 1.0f - 0.01f * 0.5f / (0.5f + opts.eps),
              1e-6f);
}

}  // namespace
}  // namespace lpce::nn
