// The serving layer's determinism contract (engine/server.h): a workload
// executed through the concurrent EngineServer produces, for every query,
// exactly the result the serial engine produces — same row counts, same
// estimate counts, same chosen plans, same re-optimization decisions, and a
// byte-identical deterministic trace — at every worker count. Estimators are
// per-query deterministic (estimates depend only on the query, never on
// which queries ran before or on which worker the query landed), so this is
// an exact equality suite, not a tolerance suite.
#include <cmath>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "engine/server.h"
#include "engine/trace.h"
#include "lpce/estimators.h"
#include "lpce/lpce_r.h"
#include "lpce/tree_model.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace lpce::eng {
namespace {

/// Everything the equivalence contract pins, extracted from one run.
struct Outcome {
  uint64_t result_count = 0;
  int num_reopts = 0;
  size_t num_estimates = 0;
  std::string initial_plan;
  std::string final_plan;
  std::string trace_json;  // TraceJsonMode::kDeterministic
};

/// Strips the wall-clock annotations (" time=0.12ms") from a pretty-printed
/// plan, leaving the deterministic structure: operators, join keys, est/actual
/// cardinalities.
std::string StripPlanTimes(const std::string& plan) {
  std::string out;
  out.reserve(plan.size());
  size_t pos = 0;
  while (pos < plan.size()) {
    const size_t hit = plan.find(" time=", pos);
    if (hit == std::string::npos) {
      out.append(plan, pos, plan.size() - pos);
      break;
    }
    out.append(plan, pos, hit - pos);
    size_t end = hit + 6;
    while (end < plan.size() && plan[end] != '\n' && plan[end] != ' ') ++end;
    pos = end;
  }
  return out;
}

Outcome Summarize(const RunStats& stats) {
  Outcome outcome;
  outcome.result_count = stats.result_count;
  outcome.num_reopts = stats.num_reopts;
  outcome.num_estimates = stats.num_estimates;
  outcome.initial_plan = StripPlanTimes(stats.initial_plan);
  outcome.final_plan = StripPlanTimes(stats.final_plan);
  outcome.trace_json = stats.trace->ToJson(TraceJsonMode::kDeterministic);
  return outcome;
}

void ExpectSameOutcome(const Outcome& expected, const Outcome& actual,
                       const std::string& context) {
  EXPECT_EQ(actual.result_count, expected.result_count) << context;
  EXPECT_EQ(actual.num_reopts, expected.num_reopts) << context;
  EXPECT_EQ(actual.num_estimates, expected.num_estimates) << context;
  EXPECT_EQ(actual.initial_plan, expected.initial_plan) << context;
  EXPECT_EQ(actual.final_plan, expected.final_plan) << context;
  EXPECT_EQ(actual.trace_json, expected.trace_json)
      << context << ":\n"
      << DiffTraceJson(expected.trace_json, actual.trace_json);
}

/// Owning adversarial estimator (same shape as engine_test.cc): grossly
/// underestimates joins so checkpoints trip and the multi-round
/// re-optimization paths run under the server.
class UnderEstimator : public card::CardinalityEstimator {
 public:
  explicit UnderEstimator(const stats::DatabaseStats* stats)
      : histogram_(stats) {}
  std::string name() const override { return "under"; }
  void PrepareQuery(const qry::Query& query) override {
    histogram_.PrepareQuery(query);
  }
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    const double base = histogram_.EstimateSubset(query, rels);
    return qry::PopCount(rels) > 1 ? std::max(1.0, base / 1e4) : base;
  }

 private:
  card::HistogramEstimator histogram_;
};

class ServingEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Intra-query parallelism stays on: worker threads and the global pool
    // must compose without disturbing results.
    common::SetGlobalPoolSize(4);
    db::SynthImdbOptions opts;
    opts.scale = 0.02;
    database_ = db::BuildSynthImdb(opts).release();
    stats_ = new stats::DatabaseStats();
    stats_->Build(*database_);
    wk::GeneratorOptions gen;
    gen.seed = 1207;
    wk::QueryGenerator generator(database_, gen);
    workload_ = new std::vector<wk::LabeledQuery>(
        generator.GenerateLabeled(200, 2, 5));
  }

  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
    delete stats_;
    stats_ = nullptr;
    delete database_;
    database_ = nullptr;
    common::SetGlobalPoolSize(0);
  }

  /// Runs the whole workload through a server and returns per-query
  /// outcomes in submission order.
  static std::vector<Outcome> RunServed(
      EngineServer::SessionFactory factory, int workers,
      const RunConfig& config, const std::vector<wk::LabeledQuery>& queries) {
    ServerOptions options;
    options.num_workers = workers;
    options.max_queue = queries.size();  // no rejections in this suite
    options.run_config = config;
    EngineServer server(database_, opt::CostModel{}, std::move(factory),
                        options);
    std::vector<std::shared_future<RunStats>> futures;
    futures.reserve(queries.size());
    for (const auto& labeled : queries) {
      Result<std::shared_future<RunStats>> admitted =
          server.Submit(labeled.query);
      EXPECT_TRUE(admitted.ok()) << admitted.status().ToString();
      futures.push_back(admitted.value());
    }
    std::vector<Outcome> outcomes;
    outcomes.reserve(futures.size());
    for (auto& future : futures) outcomes.push_back(Summarize(future.get()));
    return outcomes;
  }

  static db::Database* database_;
  static stats::DatabaseStats* stats_;
  static std::vector<wk::LabeledQuery>* workload_;
};

db::Database* ServingEquivalenceTest::database_ = nullptr;
stats::DatabaseStats* ServingEquivalenceTest::stats_ = nullptr;
std::vector<wk::LabeledQuery>* ServingEquivalenceTest::workload_ = nullptr;

TEST_F(ServingEquivalenceTest, ReoptWorkloadIdenticalAtAllWorkerCounts) {
  RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = 10.0;

  // Serial baseline: one engine, one estimator, workload order.
  std::vector<Outcome> serial;
  {
    UnderEstimator under(stats_);
    Engine engine(database_, opt::CostModel{});
    for (const auto& labeled : *workload_) {
      serial.push_back(
          Summarize(engine.RunQuery(labeled.query, &under, nullptr, config)));
      EXPECT_EQ(serial.back().result_count, labeled.FinalCard());
    }
  }

  auto factory = [](int worker_id) {
    (void)worker_id;
    EngineServer::Session session;
    session.initial = std::make_unique<UnderEstimator>(stats_);
    return session;
  };
  for (int workers : {1, 2, 4}) {
    const std::vector<Outcome> served =
        RunServed(factory, workers, config, *workload_);
    ASSERT_EQ(served.size(), serial.size());
    for (size_t q = 0; q < serial.size(); ++q) {
      ExpectSameOutcome(serial[q], served[q],
                        "query " + std::to_string(q) + " at " +
                            std::to_string(workers) + " workers");
    }
  }
}

TEST_F(ServingEquivalenceTest, TrainedLpcePipelineIdenticalAtAllWorkerCounts) {
  // Tiny LPCE-I + LPCE-R: covers the NN inference paths (batched prepare,
  // thread-local arenas, refinement encodings) across worker threads. The
  // trained models are shared read-only; every worker builds fresh estimator
  // state over them.
  model::FeatureEncoder encoder(&database_->catalog(), stats_);
  wk::GeneratorOptions gen;
  gen.seed = 77;
  wk::QueryGenerator generator(database_, gen);
  auto train = generator.GenerateLabeled(30, 2, 5);

  model::TreeModelConfig model_config;
  model_config.feature_dim = encoder.dim();
  model_config.dim = 16;
  model_config.embed_hidden = 16;
  model_config.out_hidden = 32;
  model_config.log_max_card =
      std::log1p(static_cast<double>(wk::MaxCardinality(train)));
  model::TreeModel lpce_i(&encoder, model_config);
  model::TrainOptions topt;
  topt.epochs = 4;
  model::TrainTreeModel(&lpce_i, *database_, train, topt);

  model::LpceR lpce_r(&encoder, model_config);
  model::LpceRTrainOptions ropt;
  ropt.pretrain.epochs = 3;
  ropt.refine_epochs = 2;
  ropt.pretrained_content = &lpce_i;
  model::TrainLpceR(&lpce_r, *database_, train, ropt);

  RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = 20.0;

  const std::vector<wk::LabeledQuery> queries(workload_->begin(),
                                              workload_->begin() + 40);
  std::vector<Outcome> serial;
  {
    model::TreeModelEstimator initial("LPCE-I", &lpce_i, database_);
    model::LpceREstimator refiner(&lpce_r, database_);
    Engine engine(database_, opt::CostModel{});
    for (const auto& labeled : queries) {
      serial.push_back(Summarize(
          engine.RunQuery(labeled.query, &initial, &refiner, config)));
      EXPECT_EQ(serial.back().result_count, labeled.FinalCard());
    }
  }

  auto factory = [&lpce_i, &lpce_r](int worker_id) {
    (void)worker_id;
    EngineServer::Session session;
    session.initial = std::make_unique<model::TreeModelEstimator>(
        "LPCE-I", &lpce_i, database_);
    session.refiner =
        std::make_unique<model::LpceREstimator>(&lpce_r, database_);
    return session;
  };
  for (int workers : {1, 2, 4}) {
    const std::vector<Outcome> served =
        RunServed(factory, workers, config, queries);
    ASSERT_EQ(served.size(), serial.size());
    for (size_t q = 0; q < serial.size(); ++q) {
      ExpectSameOutcome(serial[q], served[q],
                        "query " + std::to_string(q) + " at " +
                            std::to_string(workers) + " workers");
    }
  }
}

TEST_F(ServingEquivalenceTest, TelemetryOnOffBitIdenticalAtAllWorkerCounts) {
  // The telemetry pipeline's standing invariant (common/telemetry.h):
  // publishing per-query records — and the fingerprint computed to key them
  // — must not change any result, plan, estimate count, or deterministic
  // trace byte, at any worker count.
  RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = 10.0;
  auto factory = [](int worker_id) {
    (void)worker_id;
    EngineServer::Session session;
    session.initial = std::make_unique<UnderEstimator>(stats_);
    return session;
  };
  const std::vector<wk::LabeledQuery> queries(workload_->begin(),
                                              workload_->begin() + 80);

  const bool was_enabled = common::TelemetryEnabled();
  common::SetTelemetryEnabled(false);
  std::vector<std::vector<Outcome>> off;
  for (int workers : {1, 2, 4}) {
    off.push_back(RunServed(factory, workers, config, queries));
  }

  common::TelemetryOptions options;
  options.ring_capacity = 1 << 12;
  options.mode = common::TelemetryMode::kDeterministic;
  common::TelemetryHub::Global().Configure(options);
  common::SetTelemetryEnabled(true);
  size_t idx = 0;
  for (int workers : {1, 2, 4}) {
    const std::vector<Outcome> on = RunServed(factory, workers, config, queries);
    ASSERT_EQ(on.size(), off[idx].size());
    for (size_t q = 0; q < on.size(); ++q) {
      ExpectSameOutcome(off[idx][q], on[q],
                        "telemetry on vs off, query " + std::to_string(q) +
                            " at " + std::to_string(workers) + " workers");
    }
    ++idx;
  }
  // The records actually flowed (per-template windows exist) — this is an
  // equivalence test, not a telemetry-disabled one.
  auto& hub = common::TelemetryHub::Global();
  hub.DrainNow();
  EXPECT_GT(hub.published(), 0u);
  EXPECT_FALSE(hub.Snapshot().templates.empty());
  common::SetTelemetryEnabled(was_enabled);
  hub.Configure(common::TelemetryOptions::FromEnv());
}

TEST_F(ServingEquivalenceTest, RunSyncMatchesSubmit) {
  RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = 10.0;
  auto factory = [](int worker_id) {
    (void)worker_id;
    EngineServer::Session session;
    session.initial = std::make_unique<UnderEstimator>(stats_);
    return session;
  };
  ServerOptions options;
  options.num_workers = 2;
  options.run_config = config;
  EngineServer server(database_, opt::CostModel{}, factory, options);
  for (size_t q = 0; q < 8; ++q) {
    const auto& labeled = (*workload_)[q];
    Result<RunStats> sync = server.RunSync(labeled.query);
    ASSERT_TRUE(sync.ok());
    Result<std::shared_future<RunStats>> submitted =
        server.Submit(labeled.query);
    ASSERT_TRUE(submitted.ok());
    ExpectSameOutcome(Summarize(sync.value()),
                      Summarize(submitted.value().get()),
                      "query " + std::to_string(q));
    EXPECT_EQ(sync.value().result_count, labeled.FinalCard());
  }
}

}  // namespace
}  // namespace lpce::eng
