// End-to-end engine tests: result correctness with every estimator family,
// re-optimization behavior, and the time decomposition.
#include <cmath>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "engine/engine.h"
#include "lpce/estimators.h"
#include "workload/workload.h"

namespace lpce::eng {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.04;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
    wk::GeneratorOptions gen;
    gen.seed = 31;
    wk::QueryGenerator generator(database_.get(), gen);
    workload_ = generator.GenerateLabeled(8, 3, 6);
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  std::vector<wk::LabeledQuery> workload_;
};

/// Adversarial estimator: grossly underestimates joins so that nested-loop
/// plans get chosen and checkpoints trip.
class UnderEstimator : public card::CardinalityEstimator {
 public:
  explicit UnderEstimator(card::CardinalityEstimator* base) : base_(base) {}
  std::string name() const override { return "under"; }
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    const double base = base_->EstimateSubset(query, rels);
    return qry::PopCount(rels) > 1 ? std::max(1.0, base / 1e4) : base;
  }

 private:
  card::CardinalityEstimator* base_;
};

TEST_F(EngineTest, HistogramRunMatchesTruth) {
  card::HistogramEstimator estimator(&stats_);
  Engine engine(database_.get(), opt::CostModel{});
  for (const auto& labeled : workload_) {
    RunStats stats = engine.RunQuery(labeled.query, &estimator, nullptr, {});
    EXPECT_EQ(stats.result_count, labeled.FinalCard());
    EXPECT_EQ(stats.num_reopts, 0);
    EXPECT_GT(stats.exec_seconds, 0.0);
    EXPECT_GE(stats.plan_seconds, 0.0);
  }
}

TEST_F(EngineTest, ReoptPreservesResultCorrectness) {
  card::HistogramEstimator histogram(&stats_);
  UnderEstimator under(&histogram);
  Engine engine(database_.get(), opt::CostModel{});
  RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = 10.0;
  int total_reopts = 0;
  for (const auto& labeled : workload_) {
    RunStats stats = engine.RunQuery(labeled.query, &under, nullptr, config);
    EXPECT_EQ(stats.result_count, labeled.FinalCard())
        << labeled.query.ToString(database_->catalog());
    total_reopts += stats.num_reopts;
  }
  // The gross underestimates must have tripped at least one checkpoint.
  EXPECT_GT(total_reopts, 0);
}

TEST_F(EngineTest, ReoptBudgetIsRespected) {
  card::HistogramEstimator histogram(&stats_);
  UnderEstimator under(&histogram);
  Engine engine(database_.get(), opt::CostModel{});
  RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = 1.5;  // trips almost everywhere
  config.max_reopts = 2;
  for (const auto& labeled : workload_) {
    RunStats stats = engine.RunQuery(labeled.query, &under, nullptr, config);
    EXPECT_LE(stats.num_reopts, 2);
    EXPECT_EQ(stats.result_count, labeled.FinalCard());
  }
}

TEST_F(EngineTest, ReoptTimeIsAccountedSeparately) {
  card::HistogramEstimator histogram(&stats_);
  UnderEstimator under(&histogram);
  Engine engine(database_.get(), opt::CostModel{});
  RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = 5.0;
  bool saw_reopt_time = false;
  for (const auto& labeled : workload_) {
    RunStats stats = engine.RunQuery(labeled.query, &under, nullptr, config);
    if (stats.num_reopts > 0) {
      EXPECT_GT(stats.reopt_seconds, 0.0);
      saw_reopt_time = true;
    }
    EXPECT_NEAR(stats.TotalSeconds(),
                stats.plan_seconds + stats.inference_seconds +
                    stats.reopt_seconds + stats.exec_seconds,
                1e-12);
  }
  EXPECT_TRUE(saw_reopt_time);
}

TEST_F(EngineTest, OracleEstimatorNeverTriggersReopt) {
  // With exact estimates, no checkpoint can trip.
  for (const auto& labeled : workload_) {
    std::unordered_map<qry::RelSet, double> truth;
    // Provide truth for ALL connected subsets by executing each one.
    for (qry::RelSet s = 1; s <= labeled.query.AllRels(); ++s) {
      if (!labeled.query.IsConnected(s)) continue;
      wk::LabeledQuery sub;
      sub.query.tables.clear();
      // Build the sub-query over the subset's tables.
      qry::Query q;
      std::vector<int> positions;
      for (int pos = 0; pos < labeled.query.num_tables(); ++pos) {
        if (qry::Contains(s, pos)) {
          positions.push_back(pos);
          q.tables.push_back(labeled.query.tables[pos]);
        }
      }
      for (int j : labeled.query.JoinsWithin(s)) {
        q.joins.push_back(labeled.query.joins[j]);
      }
      for (const auto& p : labeled.query.predicates) {
        if (q.PositionOf(p.col.table) >= 0) q.predicates.push_back(p);
      }
      wk::LabeledQuery sub_labeled;
      sub_labeled.query = q;
      wk::LabelQuery(*database_, &sub_labeled);
      truth[s] = static_cast<double>(sub_labeled.FinalCard());
    }
    card::OracleEstimator oracle(truth);
    Engine engine(database_.get(), opt::CostModel{});
    RunConfig config;
    config.enable_reopt = true;
    config.qerror_threshold = 2.0;
    RunStats stats = engine.RunQuery(labeled.query, &oracle, nullptr, config);
    EXPECT_EQ(stats.num_reopts, 0);
    EXPECT_EQ(stats.result_count, labeled.FinalCard());
  }
}

TEST_F(EngineTest, LpceEndToEndWithRefinement) {
  // Tiny LPCE-I + LPCE-R run through the full engine path.
  model::FeatureEncoder encoder(&database_->catalog(), &stats_);
  wk::GeneratorOptions gen;
  gen.seed = 77;
  wk::QueryGenerator generator(database_.get(), gen);
  auto train = generator.GenerateLabeled(30, 2, 6);

  model::TreeModelConfig config;
  config.feature_dim = encoder.dim();
  config.dim = 16;
  config.embed_hidden = 16;
  config.out_hidden = 32;
  config.log_max_card = std::log1p(static_cast<double>(wk::MaxCardinality(train)));
  model::TreeModel lpce_i(&encoder, config);
  model::TrainOptions topt;
  topt.epochs = 6;
  model::TrainTreeModel(&lpce_i, *database_, train, topt);

  model::LpceR lpce_r(&encoder, config);
  model::LpceRTrainOptions ropt;
  ropt.pretrain.epochs = 4;
  ropt.refine_epochs = 2;
  ropt.pretrained_content = &lpce_i;
  model::TrainLpceR(&lpce_r, *database_, train, ropt);

  model::TreeModelEstimator initial("LPCE-I", &lpce_i, database_.get());
  model::LpceREstimator refiner(&lpce_r, database_.get());
  Engine engine(database_.get(), opt::CostModel{});
  RunConfig run_config;
  run_config.enable_reopt = true;
  run_config.qerror_threshold = 20.0;
  for (const auto& labeled : workload_) {
    RunStats stats =
        engine.RunQuery(labeled.query, &initial, &refiner, run_config);
    EXPECT_EQ(stats.result_count, labeled.FinalCard())
        << labeled.query.ToString(database_->catalog());
  }
}

}  // namespace
}  // namespace lpce::eng
