// The parallel substrate's determinism contract: executor runs, the matrix
// products, and a full LPCE-I training epoch must produce bit-identical
// results at every pool size (1 vs N). Chunk partitioning is static and
// per-output accumulation order matches the sequential loops, so this is an
// exact equality test, not a tolerance test.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/engine.h"
#include "exec/executor.h"
#include "lpce/tree_model.h"
#include "nn/matrix.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace lpce {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { common::SetGlobalPoolSize(8); }
  void TearDown() override { common::SetGlobalPoolSize(0); }
};

// Large enough to cross the executor's parallel threshold (4096 rows).
void FillJoinTables(db::Database* database, int32_t a, int32_t b) {
  Rng rng(13);
  for (int64_t i = 0; i < 20000; ++i) {
    database->table(a).AppendRow({rng.UniformInt(0, 5000), i});
    database->table(b).AppendRow({rng.UniformInt(0, 5000), i * 3});
  }
  database->BuildAllIndexes();
}

TEST_F(ParallelDeterminismTest, ExecutorRunIdenticalAcrossPoolSizes) {
  db::Database database;
  const int32_t a = database.AddTable({"a", {{"k"}, {"v"}}});
  const int32_t b = database.AddTable({"b", {{"k"}, {"w"}}});
  database.catalog().AddJoinEdge({a, 0}, {b, 0});
  qry::Query query;
  query.tables = {a, b};
  query.joins = {{{a, 0}, {b, 0}}};
  FillJoinTables(&database, a, b);

  auto make_plan = [&]() {
    auto scan_a = std::make_unique<exec::PlanNode>();
    scan_a->op = exec::PhysOp::kSeqScan;
    scan_a->rels = qry::Bit(0);
    scan_a->table_pos = 0;
    scan_a->filters = {{{a, 1}, qry::CmpOp::kLt, 15000}};  // residual filter
    auto scan_b = std::make_unique<exec::PlanNode>();
    scan_b->op = exec::PhysOp::kSeqScan;
    scan_b->rels = qry::Bit(1);
    scan_b->table_pos = 1;
    auto join = std::make_unique<exec::PlanNode>();
    join->op = exec::PhysOp::kHashJoin;
    join->rels = scan_a->rels | scan_b->rels;
    join->outer = std::move(scan_a);
    join->inner = std::move(scan_b);
    join->outer_key = {a, 0};
    join->inner_key = {b, 0};
    return join;
  };

  exec::RowSetPtr reference;
  size_t reference_peak = 0;
  for (int threads : {1, 2, 4, 8}) {
    auto plan = make_plan();
    exec::Executor executor(&database, &query);
    exec::Executor::Options options;
    options.num_threads = threads;
    exec::Executor::RunResult run = executor.Run(plan.get(), options);
    ASSERT_NE(run.result, nullptr) << threads << " threads";
    if (threads == 1) {
      reference = run.result;
      reference_peak = executor.peak_intermediate_bytes();
      ASSERT_GT(reference->num_rows(), 0u);
      continue;
    }
    ASSERT_EQ(run.result->num_rows(), reference->num_rows()) << threads;
    ASSERT_EQ(run.result->cols.size(), reference->cols.size());
    for (size_t c = 0; c < reference->cols.size(); ++c) {
      ASSERT_EQ(run.result->cols[c], reference->cols[c])
          << "column " << c << " at " << threads << " threads";
    }
    EXPECT_EQ(executor.peak_intermediate_bytes(), reference_peak) << threads;
  }
}

TEST_F(ParallelDeterminismTest, MatrixProductsIdenticalAcrossThreadCaps) {
  Rng rng(29);
  nn::Matrix a(300, 170), b(170, 220), c(300, 220);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
  }
  for (size_t i = 0; i < c.size(); ++i) {
    c.data()[i] = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
  }
  nn::SetMatMulThreads(1);
  const nn::Matrix mm1 = a.MatMul(b);
  const nn::Matrix tm1 = a.TransposeMatMul(c);
  const nn::Matrix mt1 = a.MatMulTranspose(a);
  for (int threads : {2, 4, 8, 0}) {
    nn::SetMatMulThreads(threads);
    EXPECT_EQ(a.MatMul(b).storage(), mm1.storage()) << threads;
    EXPECT_EQ(a.TransposeMatMul(c).storage(), tm1.storage()) << threads;
    EXPECT_EQ(a.MatMulTranspose(a).storage(), mt1.storage()) << threads;
  }
  nn::SetMatMulThreads(0);
}

/// Underestimates joins so checkpoints trip (same adversary as
/// engine_test.cc) — exercises the multi-round trace paths.
class UnderEstimator : public card::CardinalityEstimator {
 public:
  explicit UnderEstimator(card::CardinalityEstimator* base) : base_(base) {}
  std::string name() const override { return "under"; }
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    const double base = base_->EstimateSubset(query, rels);
    return qry::PopCount(rels) > 1 ? std::max(1.0, base / 1e4) : base;
  }

 private:
  card::CardinalityEstimator* base_;
};

TEST_F(ParallelDeterminismTest, EngineTraceIdenticalAcrossPoolSizes) {
  // The deterministic trace JSON — spans, cardinalities, q-errors, plan
  // costs, re-optimization decisions — must be byte-identical at every pool
  // size; only the kFull wall-clock fields may differ.
  db::SynthImdbOptions opts;
  opts.scale = 0.04;
  auto database = db::BuildSynthImdb(opts);
  stats::DatabaseStats stats;
  stats.Build(*database);
  wk::GeneratorOptions gen;
  gen.seed = 31;
  wk::QueryGenerator generator(database.get(), gen);
  auto workload = generator.GenerateLabeled(4, 3, 6);

  auto traces_with = [&](int pool_size) {
    common::SetGlobalPoolSize(pool_size);
    card::HistogramEstimator histogram(&stats);
    UnderEstimator under(&histogram);
    eng::Engine engine(database.get(), opt::CostModel{});
    eng::RunConfig config;
    config.enable_reopt = true;
    config.qerror_threshold = 10.0;
    std::vector<std::string> jsons;
    for (const auto& labeled : workload) {
      eng::RunStats run = engine.RunQuery(labeled.query, &under, nullptr, config);
      jsons.push_back(run.trace->ToJson(eng::TraceJsonMode::kDeterministic));
    }
    return jsons;
  };

  const std::vector<std::string> reference = traces_with(1);
  for (int pool_size : {2, 4}) {
    const std::vector<std::string> traces = traces_with(pool_size);
    for (size_t q = 0; q < reference.size(); ++q) {
      EXPECT_EQ(traces[q], reference[q])
          << "query " << q << " at pool size " << pool_size << ":\n"
          << eng::DiffTraceJson(reference[q], traces[q]);
    }
  }
}

TEST_F(ParallelDeterminismTest, TrainingEpochIdenticalAcrossPoolSizes) {
  db::SynthImdbOptions opts;
  opts.scale = 0.03;
  auto database = db::BuildSynthImdb(opts);
  stats::DatabaseStats stats;
  stats.Build(*database);
  model::FeatureEncoder encoder(&database->catalog(), &stats);

  wk::GeneratorOptions gen;
  gen.seed = 5;
  gen.require_nonempty = true;
  wk::QueryGenerator generator(database.get(), gen);
  auto train = generator.GenerateLabeled(60, 3, 6);

  model::TreeModelConfig config;
  config.feature_dim = encoder.dim();
  config.dim = 16;
  config.embed_hidden = 16;
  config.out_hidden = 32;
  config.log_max_card =
      std::log1p(static_cast<double>(wk::MaxCardinality(train)));
  config.seed = 7;

  auto train_with = [&](int threads) {
    auto model = std::make_unique<model::TreeModel>(&encoder, config);
    model::TrainOptions options;
    options.epochs = 1;
    options.seed = 99;
    options.num_threads = threads;
    TrainTreeModel(model.get(), *database, train, options);
    return model;
  };

  auto m1 = train_with(1);
  auto mn = train_with(8);
  for (const auto& name : m1->params().names()) {
    const nn::Matrix& v1 = m1->params().Get(name)->value();
    const nn::Matrix& vn = mn->params().Get(name)->value();
    ASSERT_EQ(v1.storage(), vn.storage()) << "param " << name;
  }
}

}  // namespace
}  // namespace lpce
