// SQL parser tests: accepted dialect, catalog validation, error paths, and
// round-tripping through Query::ToString.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "query/parser.h"
#include "storage/database.h"

namespace lpce::qry {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.02;
    database_ = db::BuildSynthImdb(opts);
  }

  Status Parse(const std::string& sql) {
    return ParseQuery(database_->catalog(), sql, &query_);
  }

  std::unique_ptr<db::Database> database_;
  Query query_;
};

TEST_F(ParserTest, SingleTableWithPredicate) {
  ASSERT_TRUE(Parse("SELECT COUNT(*) FROM title WHERE title.production_year > 2000")
                  .ok());
  EXPECT_EQ(query_.num_tables(), 1);
  EXPECT_EQ(query_.num_joins(), 0);
  ASSERT_EQ(query_.predicates.size(), 1u);
  EXPECT_EQ(query_.predicates[0].op, CmpOp::kGt);
  EXPECT_EQ(query_.predicates[0].value, 2000);
}

TEST_F(ParserTest, TwoTableJoin) {
  ASSERT_TRUE(Parse("SELECT COUNT(*) FROM title, movie_companies WHERE "
                    "movie_companies.movie_id = title.id")
                  .ok());
  EXPECT_EQ(query_.num_tables(), 2);
  EXPECT_EQ(query_.num_joins(), 1);
  EXPECT_TRUE(query_.IsConnected(query_.AllRels()));
}

TEST_F(ParserTest, FullQueryWithMixedConditions) {
  const std::string sql =
      "select count(*) from title, movie_companies, company_name where "
      "movie_companies.movie_id = title.id and "
      "movie_companies.company_id = company_name.id and "
      "title.production_year >= 1990 and company_name.country_code_id <> 3";
  ASSERT_TRUE(Parse(sql).ok());
  EXPECT_EQ(query_.num_tables(), 3);
  EXPECT_EQ(query_.num_joins(), 2);
  EXPECT_EQ(query_.predicates.size(), 2u);
}

TEST_F(ParserTest, CaseInsensitiveKeywordsAndSemicolon) {
  EXPECT_TRUE(Parse("SeLeCt CoUnT(*) FrOm title;").ok());
}

TEST_F(ParserTest, AllComparisonOperators) {
  for (const char* op : {"<", "<=", "=", ">=", ">", "<>"}) {
    const std::string sql = std::string("SELECT COUNT(*) FROM title WHERE "
                                        "title.kind_id ") +
                            op + " 3";
    EXPECT_TRUE(Parse(sql).ok()) << op;
  }
}

TEST_F(ParserTest, NegativeLiteral) {
  ASSERT_TRUE(Parse("SELECT COUNT(*) FROM title WHERE title.votes > -5").ok());
  EXPECT_EQ(query_.predicates[0].value, -5);
}

TEST_F(ParserTest, RejectsUnknownTable) {
  Status status = Parse("SELECT COUNT(*) FROM nonsense");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(ParserTest, RejectsUnknownColumn) {
  Status status = Parse("SELECT COUNT(*) FROM title WHERE title.bogus = 1");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(ParserTest, RejectsDisconnectedJoinGraph) {
  // Two tables but no join condition.
  Status status = Parse("SELECT COUNT(*) FROM title, movie_companies");
  EXPECT_FALSE(status.ok());
}

TEST_F(ParserTest, RejectsTableNotInFromList) {
  Status status = Parse(
      "SELECT COUNT(*) FROM title WHERE movie_companies.movie_id = title.id");
  EXPECT_FALSE(status.ok());
}

TEST_F(ParserTest, RejectsNonEquiJoin) {
  Status status = Parse(
      "SELECT COUNT(*) FROM title, movie_companies WHERE "
      "movie_companies.movie_id < title.id");
  EXPECT_FALSE(status.ok());
}

TEST_F(ParserTest, RejectsDuplicateTable) {
  Status status = Parse("SELECT COUNT(*) FROM title, title");
  EXPECT_FALSE(status.ok());
}

TEST_F(ParserTest, RejectsTrailingGarbage) {
  Status status = Parse("SELECT COUNT(*) FROM title LIMIT 5");
  EXPECT_FALSE(status.ok());
}

TEST_F(ParserTest, RejectsBadCharacters) {
  Status status = Parse("SELECT COUNT(*) FROM title WHERE title.id @ 3");
  EXPECT_FALSE(status.ok());
}

TEST_F(ParserTest, ParsedQueryExecutes) {
  ASSERT_TRUE(Parse("SELECT COUNT(*) FROM title, cast_info WHERE "
                    "cast_info.movie_id = title.id AND title.kind_id = 1")
                  .ok());
  auto plan = exec::BuildCanonicalHashPlan(query_);
  exec::Executor executor(database_.get(), &query_);
  exec::RowSetPtr result = executor.Execute(plan.get());
  ASSERT_NE(result, nullptr);
  // Brute-force verification.
  const db::Table& title = database_->table(query_.tables[0]);
  const db::Table& ci = database_->table(query_.tables[1]);
  uint64_t expect = 0;
  for (size_t i = 0; i < ci.num_rows(); ++i) {
    const int64_t movie = ci.at(i, 1);
    if (title.at(static_cast<size_t>(movie), 1) == 1) ++expect;
  }
  EXPECT_EQ(result->num_rows(), expect);
}

TEST_F(ParserTest, RoundTripsThroughToString) {
  const std::string sql =
      "SELECT COUNT(*) FROM title, movie_keyword, keyword WHERE "
      "movie_keyword.movie_id = title.id AND movie_keyword.keyword_id = "
      "keyword.id AND title.votes < 500";
  ASSERT_TRUE(Parse(sql).ok());
  const std::string printed = query_.ToString(database_->catalog());
  Query reparsed;
  ASSERT_TRUE(ParseQuery(database_->catalog(), printed, &reparsed).ok());
  EXPECT_EQ(reparsed.tables, query_.tables);
  EXPECT_EQ(reparsed.joins.size(), query_.joins.size());
  EXPECT_EQ(reparsed.predicates.size(), query_.predicates.size());
}

}  // namespace
}  // namespace lpce::qry
