// Executor edge cases: empty inputs, all-filtered scans, duplicate-heavy
// merge joins, row-limit aborts, and peak-memory accounting.
#include <limits>
#include <utility>

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "storage/database.h"

namespace lpce::exec {
namespace {

class ExecEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = database_.AddTable({"a", {{"k"}, {"v"}}});
    b_ = database_.AddTable({"b", {{"k"}, {"w"}}});
    database_.catalog().AddJoinEdge({a_, 0}, {b_, 0});
    query_.tables = {a_, b_};
    query_.joins = {{{a_, 0}, {b_, 0}}};
  }

  std::unique_ptr<PlanNode> Scan(int pos, std::vector<qry::Predicate> filters = {}) {
    auto node = std::make_unique<PlanNode>();
    node->op = PhysOp::kSeqScan;
    node->rels = qry::Bit(pos);
    node->table_pos = pos;
    node->filters = std::move(filters);
    return node;
  }

  std::unique_ptr<PlanNode> Join(PhysOp op, std::unique_ptr<PlanNode> outer,
                                 std::unique_ptr<PlanNode> inner) {
    auto node = std::make_unique<PlanNode>();
    node->op = op;
    node->rels = outer->rels | inner->rels;
    node->outer = std::move(outer);
    node->inner = std::move(inner);
    node->outer_key = {a_, 0};
    node->inner_key = {b_, 0};
    return node;
  }

  db::Database database_;
  qry::Query query_;
  int32_t a_ = -1, b_ = -1;
};

TEST_F(ExecEdgeTest, EmptyTablesJoinToEmpty) {
  database_.BuildAllIndexes();
  for (auto op : {PhysOp::kHashJoin, PhysOp::kMergeJoin, PhysOp::kNestLoopJoin}) {
    auto plan = Join(op, Scan(0), Scan(1));
    Executor executor(&database_, &query_);
    EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 0u) << PhysOpName(op);
  }
}

TEST_F(ExecEdgeTest, AllFilteredScanYieldsEmptyJoin) {
  for (int64_t i = 0; i < 10; ++i) {
    database_.table(a_).AppendRow({i, i});
    database_.table(b_).AppendRow({i, i});
  }
  database_.BuildAllIndexes();
  qry::Predicate impossible{{a_, 1}, qry::CmpOp::kGt, 1000};
  auto plan = Join(PhysOp::kHashJoin, Scan(0, {impossible}), Scan(1));
  Executor executor(&database_, &query_);
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 0u);
}

TEST_F(ExecEdgeTest, DuplicateKeysCrossProductInMergeJoin) {
  // 3 copies of key 7 on each side -> 9 output rows; merge join must emit
  // the full group cross product.
  for (int i = 0; i < 3; ++i) {
    database_.table(a_).AppendRow({7, i});
    database_.table(b_).AppendRow({7, i + 10});
  }
  database_.table(a_).AppendRow({1, 0});
  database_.table(b_).AppendRow({2, 0});
  database_.BuildAllIndexes();
  for (auto op : {PhysOp::kHashJoin, PhysOp::kMergeJoin, PhysOp::kNestLoopJoin}) {
    auto plan = Join(op, Scan(0), Scan(1));
    Executor executor(&database_, &query_);
    EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 9u) << PhysOpName(op);
  }
}

TEST_F(ExecEdgeTest, RowLimitAbortsExplodingJoin) {
  // 100x100 same-key rows -> 10000-row join; limit 1000 must abort, for
  // every join algorithm.
  for (int i = 0; i < 100; ++i) {
    database_.table(a_).AppendRow({5, i});
    database_.table(b_).AppendRow({5, i});
  }
  database_.BuildAllIndexes();
  for (auto op : {PhysOp::kHashJoin, PhysOp::kMergeJoin, PhysOp::kNestLoopJoin}) {
    auto plan = Join(op, Scan(0), Scan(1));
    Executor executor(&database_, &query_);
    Executor::Options options;
    options.max_node_rows = 1000;
    Executor::RunResult run = executor.Run(plan.get(), options);
    EXPECT_TRUE(run.aborted) << PhysOpName(op);
    EXPECT_EQ(run.result, nullptr) << PhysOpName(op);
  }
}

TEST_F(ExecEdgeTest, RowLimitDoesNotTriggerBelowThreshold) {
  for (int i = 0; i < 20; ++i) {
    database_.table(a_).AppendRow({i, i});
    database_.table(b_).AppendRow({i, i});
  }
  database_.BuildAllIndexes();
  auto plan = Join(PhysOp::kHashJoin, Scan(0), Scan(1));
  Executor executor(&database_, &query_);
  Executor::Options options;
  options.max_node_rows = 1000;
  Executor::RunResult run = executor.Run(plan.get(), options);
  EXPECT_FALSE(run.aborted);
  ASSERT_NE(run.result, nullptr);
  EXPECT_EQ(run.result->num_rows(), 20u);
}

TEST_F(ExecEdgeTest, PeakIntermediateBytesSumsLiveResults) {
  for (int i = 0; i < 50; ++i) {
    database_.table(a_).AppendRow({i % 5, i});
    database_.table(b_).AppendRow({i % 5, i});
  }
  database_.BuildAllIndexes();
  auto plan = Join(PhysOp::kHashJoin, Scan(0), Scan(1));
  Executor executor(&database_, &query_);
  executor.Execute(plan.get());
  // Every finished intermediate stays retained for the run (checkpoints may
  // re-plan around it), so the peak is the *sum* of live rowsets: both scans
  // carry their key column (50 rows each); the root projects everything away.
  // The old largest-single-rowset accounting under-reported this as one scan.
  EXPECT_GE(executor.peak_intermediate_bytes(), 2 * 50 * sizeof(int64_t));
}

TEST_F(ExecEdgeTest, IndexScanLtAtInt64MinIsEmptyNotUB) {
  // x < INT64_MIN matches nothing; the old bound arithmetic computed
  // `INT64_MIN - 1` (signed overflow, UB) which in practice wrapped to
  // INT64_MAX and returned every row.
  for (int64_t i = 0; i < 10; ++i) {
    database_.table(a_).AppendRow({i, i});
    database_.table(b_).AppendRow({i, i});
  }
  database_.BuildAllIndexes();
  qry::Predicate lt_min{{a_, 0}, qry::CmpOp::kLt,
                        std::numeric_limits<int64_t>::min()};
  auto scan = Scan(0, {lt_min});
  scan->op = PhysOp::kIndexScan;
  scan->index_col = {a_, 0};
  auto plan = Join(PhysOp::kHashJoin, std::move(scan), Scan(1));
  Executor executor(&database_, &query_);
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 0u);
}

TEST_F(ExecEdgeTest, IndexScanGtAtInt64MaxIsEmptyNotUB) {
  for (int64_t i = 0; i < 10; ++i) {
    database_.table(a_).AppendRow({i, i});
    database_.table(b_).AppendRow({i, i});
  }
  database_.BuildAllIndexes();
  qry::Predicate gt_max{{a_, 0}, qry::CmpOp::kGt,
                        std::numeric_limits<int64_t>::max()};
  auto scan = Scan(0, {gt_max});
  scan->op = PhysOp::kIndexScan;
  scan->index_col = {a_, 0};
  auto plan = Join(PhysOp::kHashJoin, std::move(scan), Scan(1));
  Executor executor(&database_, &query_);
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 0u);
}

TEST_F(ExecEdgeTest, IndexScanInclusiveBoundsAtExtremesKeepAllRows) {
  // The inclusive operators at the extreme literals must still return
  // everything (no clamping side effects).
  for (int64_t i = 0; i < 10; ++i) {
    database_.table(a_).AppendRow({i, i});
    database_.table(b_).AppendRow({i, i});
  }
  database_.BuildAllIndexes();
  for (auto [op, value] :
       {std::pair{qry::CmpOp::kLe, std::numeric_limits<int64_t>::max()},
        std::pair{qry::CmpOp::kGe, std::numeric_limits<int64_t>::min()}}) {
    qry::Predicate pred{{a_, 0}, op, value};
    auto scan = Scan(0, {pred});
    scan->op = PhysOp::kIndexScan;
    scan->index_col = {a_, 0};
    auto plan = Join(PhysOp::kHashJoin, std::move(scan), Scan(1));
    Executor executor(&database_, &query_);
    EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 10u);
  }
}

TEST_F(ExecEdgeTest, IndexScanOnEqualityBound) {
  for (int64_t i = 0; i < 30; ++i) database_.table(a_).AppendRow({i % 3, i});
  for (int64_t i = 0; i < 5; ++i) database_.table(b_).AppendRow({1, i});
  database_.BuildAllIndexes();
  qry::Predicate eq{{a_, 0}, qry::CmpOp::kEq, 1};
  auto scan = Scan(0, {eq});
  scan->op = PhysOp::kIndexScan;
  scan->index_col = {a_, 0};
  auto plan = Join(PhysOp::kHashJoin, std::move(scan), Scan(1));
  Executor executor(&database_, &query_);
  // 10 a-rows with key 1, each matching 5 b-rows.
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 50u);
}

TEST_F(ExecEdgeTest, NeFilterIsResidualOnIndexScan) {
  for (int64_t i = 0; i < 20; ++i) database_.table(a_).AppendRow({i, i % 4});
  for (int64_t i = 0; i < 20; ++i) database_.table(b_).AppendRow({i, 0});
  database_.BuildAllIndexes();
  qry::Predicate range{{a_, 0}, qry::CmpOp::kLt, 10};
  qry::Predicate ne{{a_, 1}, qry::CmpOp::kNe, 0};
  auto scan = Scan(0, {range, ne});
  scan->op = PhysOp::kIndexScan;
  scan->index_col = {a_, 0};
  auto plan = Join(PhysOp::kHashJoin, std::move(scan), Scan(1));
  Executor executor(&database_, &query_);
  // a rows with k < 10 and v != 0: k in {1,2,3,5,6,7,9} -> 7 rows, each
  // joining exactly one b row.
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 7u);
}

}  // namespace
}  // namespace lpce::exec
