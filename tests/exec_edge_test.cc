// Executor edge cases: empty inputs, all-filtered scans, duplicate-heavy
// merge joins, row-limit aborts, peak-memory accounting, and the vectorized
// path's selection-vector corners (empty batches, all-rows-pass filters,
// single-row tail batches, batch boundaries straddling join partition
// chunks, and the LPCE_EXEC_BATCH knob).
#include <cstdlib>
#include <functional>
#include <limits>
#include <utility>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "exec/executor.h"
#include "exec/vectorized.h"
#include "storage/database.h"

namespace lpce::exec {
namespace {

class ExecEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = database_.AddTable({"a", {{"k"}, {"v"}}});
    b_ = database_.AddTable({"b", {{"k"}, {"w"}}});
    database_.catalog().AddJoinEdge({a_, 0}, {b_, 0});
    query_.tables = {a_, b_};
    query_.joins = {{{a_, 0}, {b_, 0}}};
  }

  std::unique_ptr<PlanNode> Scan(int pos, std::vector<qry::Predicate> filters = {}) {
    auto node = std::make_unique<PlanNode>();
    node->op = PhysOp::kSeqScan;
    node->rels = qry::Bit(pos);
    node->table_pos = pos;
    node->filters = std::move(filters);
    return node;
  }

  std::unique_ptr<PlanNode> Join(PhysOp op, std::unique_ptr<PlanNode> outer,
                                 std::unique_ptr<PlanNode> inner) {
    auto node = std::make_unique<PlanNode>();
    node->op = op;
    node->rels = outer->rels | inner->rels;
    node->outer = std::move(outer);
    node->inner = std::move(inner);
    node->outer_key = {a_, 0};
    node->inner_key = {b_, 0};
    return node;
  }

  /// Runs `make_plan()` row-at-a-time (the oracle) and at every requested
  /// (batch size x pool size) — with late materialization both off and on —
  /// requiring every finished node's rowset to be bit-identical to the
  /// oracle's (late rowsets are gathered through their row ids first).
  void ExpectBatchMatchesRow(
      const std::function<std::unique_ptr<PlanNode>()>& make_plan,
      std::initializer_list<int> batches,
      std::initializer_list<int> pools = {1}) {
    struct Outcome {
      std::vector<RowSetPtr> rowsets;  // post-order
      std::vector<uint64_t> actuals;
    };
    auto run = [&](int batch, int pool, int late) {
      common::SetGlobalPoolSize(pool);
      auto plan = make_plan();
      Executor executor(&database_, &query_);
      Executor::Options options;
      options.batch_size = batch;
      options.late_materialization = late;
      Executor::RunResult result = executor.Run(plan.get(), options);
      common::SetGlobalPoolSize(0);
      Outcome out;
      std::vector<PlanNode*> nodes;
      PostOrderPlan(plan.get(), &nodes);
      for (PlanNode* node : nodes) {
        auto it = result.finished.find(node);
        out.rowsets.push_back(it != result.finished.end()
                                  ? MaterializeRowSet(database_, it->second)
                                  : nullptr);
        out.actuals.push_back(node->actual_card);
      }
      return out;
    };
    const Outcome oracle = run(/*batch=*/0, /*pool=*/1, /*late=*/0);
    for (int batch : batches) {
      for (int pool : pools) {
        for (int late : {0, 1}) {
          SCOPED_TRACE("batch=" + std::to_string(batch) +
                       " pool=" + std::to_string(pool) +
                       " late=" + std::to_string(late));
          const Outcome got = run(batch, pool, late);
          ASSERT_EQ(got.rowsets.size(), oracle.rowsets.size());
          for (size_t i = 0; i < oracle.rowsets.size(); ++i) {
            EXPECT_EQ(got.actuals[i], oracle.actuals[i]) << "node " << i;
            ASSERT_NE(got.rowsets[i], nullptr) << "node " << i;
            ASSERT_NE(oracle.rowsets[i], nullptr) << "node " << i;
            EXPECT_TRUE(got.rowsets[i]->schema == oracle.rowsets[i]->schema)
                << "node " << i;
            EXPECT_EQ(got.rowsets[i]->row_count, oracle.rowsets[i]->row_count)
                << "node " << i;
            EXPECT_TRUE(got.rowsets[i]->cols == oracle.rowsets[i]->cols)
                << "node " << i;
          }
        }
      }
    }
  }

  db::Database database_;
  qry::Query query_;
  int32_t a_ = -1, b_ = -1;
};

TEST_F(ExecEdgeTest, EmptyTablesJoinToEmpty) {
  database_.BuildAllIndexes();
  for (auto op : {PhysOp::kHashJoin, PhysOp::kMergeJoin, PhysOp::kNestLoopJoin}) {
    auto plan = Join(op, Scan(0), Scan(1));
    Executor executor(&database_, &query_);
    EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 0u) << PhysOpName(op);
  }
}

TEST_F(ExecEdgeTest, AllFilteredScanYieldsEmptyJoin) {
  for (int64_t i = 0; i < 10; ++i) {
    database_.table(a_).AppendRow({i, i});
    database_.table(b_).AppendRow({i, i});
  }
  database_.BuildAllIndexes();
  qry::Predicate impossible{{a_, 1}, qry::CmpOp::kGt, 1000};
  auto plan = Join(PhysOp::kHashJoin, Scan(0, {impossible}), Scan(1));
  Executor executor(&database_, &query_);
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 0u);
}

TEST_F(ExecEdgeTest, DuplicateKeysCrossProductInMergeJoin) {
  // 3 copies of key 7 on each side -> 9 output rows; merge join must emit
  // the full group cross product.
  for (int i = 0; i < 3; ++i) {
    database_.table(a_).AppendRow({7, i});
    database_.table(b_).AppendRow({7, i + 10});
  }
  database_.table(a_).AppendRow({1, 0});
  database_.table(b_).AppendRow({2, 0});
  database_.BuildAllIndexes();
  for (auto op : {PhysOp::kHashJoin, PhysOp::kMergeJoin, PhysOp::kNestLoopJoin}) {
    auto plan = Join(op, Scan(0), Scan(1));
    Executor executor(&database_, &query_);
    EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 9u) << PhysOpName(op);
  }
}

TEST_F(ExecEdgeTest, RowLimitAbortsExplodingJoin) {
  // 100x100 same-key rows -> 10000-row join; limit 1000 must abort, for
  // every join algorithm.
  for (int i = 0; i < 100; ++i) {
    database_.table(a_).AppendRow({5, i});
    database_.table(b_).AppendRow({5, i});
  }
  database_.BuildAllIndexes();
  for (auto op : {PhysOp::kHashJoin, PhysOp::kMergeJoin, PhysOp::kNestLoopJoin}) {
    auto plan = Join(op, Scan(0), Scan(1));
    Executor executor(&database_, &query_);
    Executor::Options options;
    options.max_node_rows = 1000;
    Executor::RunResult run = executor.Run(plan.get(), options);
    EXPECT_TRUE(run.aborted) << PhysOpName(op);
    EXPECT_EQ(run.result, nullptr) << PhysOpName(op);
  }
}

TEST_F(ExecEdgeTest, RowLimitDoesNotTriggerBelowThreshold) {
  for (int i = 0; i < 20; ++i) {
    database_.table(a_).AppendRow({i, i});
    database_.table(b_).AppendRow({i, i});
  }
  database_.BuildAllIndexes();
  auto plan = Join(PhysOp::kHashJoin, Scan(0), Scan(1));
  Executor executor(&database_, &query_);
  Executor::Options options;
  options.max_node_rows = 1000;
  Executor::RunResult run = executor.Run(plan.get(), options);
  EXPECT_FALSE(run.aborted);
  ASSERT_NE(run.result, nullptr);
  EXPECT_EQ(run.result->num_rows(), 20u);
}

TEST_F(ExecEdgeTest, PeakIntermediateBytesSumsLiveResults) {
  for (int i = 0; i < 50; ++i) {
    database_.table(a_).AppendRow({i % 5, i});
    database_.table(b_).AppendRow({i % 5, i});
  }
  database_.BuildAllIndexes();
  auto plan = Join(PhysOp::kHashJoin, Scan(0), Scan(1));
  Executor executor(&database_, &query_);
  Executor::Options options;
  Executor::RunResult run = executor.Run(plan.get(), options);
  ASSERT_NE(run.result, nullptr);
  // Every finished intermediate stays retained for the run (checkpoints may
  // re-plan around it), so the peak is the *sum* of live rowsets — nothing is
  // ever released mid-run, making the peak exactly the sum of the finished
  // results. The old largest-single-rowset accounting under-reported this as
  // one scan. Computing the expectation from the retained rowsets themselves
  // keeps the assertion valid in every representation (row / batch /
  // LPCE_EXEC_LATE_MAT row-id intermediates).
  size_t finished_sum = 0;
  for (const auto& [node, rs] : run.finished) finished_sum += rs->ByteSize();
  EXPECT_EQ(executor.peak_intermediate_bytes(), finished_sum);
  // Both scans carry at least their 50-row key column — as int64 payloads or
  // as uint32 row ids, never less than the narrower width.
  EXPECT_GE(executor.peak_intermediate_bytes(), 2 * 50 * sizeof(uint32_t));
}

TEST_F(ExecEdgeTest, PeakBytesAccountingAgreesAcrossPathsOn3JoinQuery) {
  // Regression for the peak_intermediate_bytes contract on a known 3-join
  // query: the row and batch paths retain bit-identical materialized
  // intermediates, so their peaks must agree exactly; the late path counts
  // its row-id columns the same way (sum of retained rowsets) and must come
  // in strictly lower — uint32 row ids versus int64 payload columns.
  db::Database db;
  std::vector<int32_t> tables;
  for (int t = 0; t < 4; ++t) {
    tables.push_back(
        db.AddTable({"t" + std::to_string(t), {{"k"}, {"v"}}}));
  }
  qry::Query query;
  query.tables = tables;
  for (int t = 0; t + 1 < 4; ++t) {
    db.catalog().AddJoinEdge({tables[t], 0}, {tables[t + 1], 0});
    query.joins.push_back({{tables[t], 0}, {tables[t + 1], 0}});
  }
  for (int t = 0; t < 4; ++t) {
    for (int64_t i = 0; i < 200; ++i) {
      db.table(tables[t]).AppendRow({i % 10, i});
    }
  }
  db.BuildAllIndexes();

  auto make_plan = [&] {
    auto scan = [&](int pos) {
      auto node = std::make_unique<PlanNode>();
      node->op = PhysOp::kSeqScan;
      node->rels = qry::Bit(pos);
      node->table_pos = pos;
      return node;
    };
    std::unique_ptr<PlanNode> plan = scan(0);
    for (int t = 1; t < 4; ++t) {
      auto join = std::make_unique<PlanNode>();
      join->op = PhysOp::kHashJoin;
      join->rels = plan->rels | qry::Bit(t);
      join->outer = std::move(plan);
      join->inner = scan(t);
      join->outer_key = {tables[t - 1], 0};
      join->inner_key = {tables[t], 0};
      plan = std::move(join);
    }
    return plan;
  };

  auto run_peak = [&](int batch, int late, uint64_t* rows) {
    auto plan = make_plan();
    Executor executor(&db, &query);
    Executor::Options options;
    options.batch_size = batch;
    options.late_materialization = late;
    Executor::RunResult run = executor.Run(plan.get(), options);
    EXPECT_NE(run.result, nullptr);
    *rows = run.result != nullptr ? run.result->num_rows() : 0;
    size_t finished_sum = 0;
    for (const auto& [node, rs] : run.finished) finished_sum += rs->ByteSize();
    EXPECT_EQ(executor.peak_intermediate_bytes(), finished_sum);
    return executor.peak_intermediate_bytes();
  };

  uint64_t row_rows = 0, batch_rows = 0, late_rows = 0;
  const size_t row_peak = run_peak(/*batch=*/0, /*late=*/0, &row_rows);
  const size_t batch_peak = run_peak(/*batch=*/1024, /*late=*/0, &batch_rows);
  const size_t late_peak = run_peak(/*batch=*/1024, /*late=*/1, &late_rows);
  EXPECT_EQ(row_rows, batch_rows);
  EXPECT_EQ(row_rows, late_rows);
  EXPECT_EQ(row_peak, batch_peak);
  EXPECT_LT(late_peak, row_peak);
  EXPECT_GT(late_peak, 0u);
}

TEST_F(ExecEdgeTest, IndexScanLtAtInt64MinIsEmptyNotUB) {
  // x < INT64_MIN matches nothing; the old bound arithmetic computed
  // `INT64_MIN - 1` (signed overflow, UB) which in practice wrapped to
  // INT64_MAX and returned every row.
  for (int64_t i = 0; i < 10; ++i) {
    database_.table(a_).AppendRow({i, i});
    database_.table(b_).AppendRow({i, i});
  }
  database_.BuildAllIndexes();
  qry::Predicate lt_min{{a_, 0}, qry::CmpOp::kLt,
                        std::numeric_limits<int64_t>::min()};
  auto scan = Scan(0, {lt_min});
  scan->op = PhysOp::kIndexScan;
  scan->index_col = {a_, 0};
  auto plan = Join(PhysOp::kHashJoin, std::move(scan), Scan(1));
  Executor executor(&database_, &query_);
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 0u);
}

TEST_F(ExecEdgeTest, IndexScanGtAtInt64MaxIsEmptyNotUB) {
  for (int64_t i = 0; i < 10; ++i) {
    database_.table(a_).AppendRow({i, i});
    database_.table(b_).AppendRow({i, i});
  }
  database_.BuildAllIndexes();
  qry::Predicate gt_max{{a_, 0}, qry::CmpOp::kGt,
                        std::numeric_limits<int64_t>::max()};
  auto scan = Scan(0, {gt_max});
  scan->op = PhysOp::kIndexScan;
  scan->index_col = {a_, 0};
  auto plan = Join(PhysOp::kHashJoin, std::move(scan), Scan(1));
  Executor executor(&database_, &query_);
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 0u);
}

TEST_F(ExecEdgeTest, IndexScanInclusiveBoundsAtExtremesKeepAllRows) {
  // The inclusive operators at the extreme literals must still return
  // everything (no clamping side effects).
  for (int64_t i = 0; i < 10; ++i) {
    database_.table(a_).AppendRow({i, i});
    database_.table(b_).AppendRow({i, i});
  }
  database_.BuildAllIndexes();
  for (auto [op, value] :
       {std::pair{qry::CmpOp::kLe, std::numeric_limits<int64_t>::max()},
        std::pair{qry::CmpOp::kGe, std::numeric_limits<int64_t>::min()}}) {
    qry::Predicate pred{{a_, 0}, op, value};
    auto scan = Scan(0, {pred});
    scan->op = PhysOp::kIndexScan;
    scan->index_col = {a_, 0};
    auto plan = Join(PhysOp::kHashJoin, std::move(scan), Scan(1));
    Executor executor(&database_, &query_);
    EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 10u);
  }
}

TEST_F(ExecEdgeTest, IndexScanOnEqualityBound) {
  for (int64_t i = 0; i < 30; ++i) database_.table(a_).AppendRow({i % 3, i});
  for (int64_t i = 0; i < 5; ++i) database_.table(b_).AppendRow({1, i});
  database_.BuildAllIndexes();
  qry::Predicate eq{{a_, 0}, qry::CmpOp::kEq, 1};
  auto scan = Scan(0, {eq});
  scan->op = PhysOp::kIndexScan;
  scan->index_col = {a_, 0};
  auto plan = Join(PhysOp::kHashJoin, std::move(scan), Scan(1));
  Executor executor(&database_, &query_);
  // 10 a-rows with key 1, each matching 5 b-rows.
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 50u);
}

TEST_F(ExecEdgeTest, NeFilterIsResidualOnIndexScan) {
  for (int64_t i = 0; i < 20; ++i) database_.table(a_).AppendRow({i, i % 4});
  for (int64_t i = 0; i < 20; ++i) database_.table(b_).AppendRow({i, 0});
  database_.BuildAllIndexes();
  qry::Predicate range{{a_, 0}, qry::CmpOp::kLt, 10};
  qry::Predicate ne{{a_, 1}, qry::CmpOp::kNe, 0};
  auto scan = Scan(0, {range, ne});
  scan->op = PhysOp::kIndexScan;
  scan->index_col = {a_, 0};
  auto plan = Join(PhysOp::kHashJoin, std::move(scan), Scan(1));
  Executor executor(&database_, &query_);
  // a rows with k < 10 and v != 0: k in {1,2,3,5,6,7,9} -> 7 rows, each
  // joining exactly one b row.
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 7u);
}

TEST_F(ExecEdgeTest, BatchEmptyTablesBitIdentical) {
  // Zero input rows -> zero batches; the batch path must still produce the
  // same (empty) rowsets and cardinalities as the row path.
  database_.BuildAllIndexes();
  ExpectBatchMatchesRow(
      [&] { return Join(PhysOp::kHashJoin, Scan(0), Scan(1)); }, {1, 3, 1024});
}

TEST_F(ExecEdgeTest, BatchAllRowsPassFilterBitIdentical) {
  // A filter every row passes exercises the full-selection path (the
  // selection vector is the identity), distinct from the dense no-filter
  // column-copy fast path — both must match the row path bit for bit.
  for (int64_t i = 0; i < 10; ++i) {
    database_.table(a_).AppendRow({i, i});
    database_.table(b_).AppendRow({i, i});
  }
  database_.BuildAllIndexes();
  qry::Predicate all_pass{{a_, 1}, qry::CmpOp::kGe, 0};
  ExpectBatchMatchesRow(
      [&] { return Join(PhysOp::kHashJoin, Scan(0, {all_pass}), Scan(1)); },
      {1, 3, 1024});
  ExpectBatchMatchesRow(
      [&] { return Join(PhysOp::kHashJoin, Scan(0), Scan(1)); }, {1, 3, 1024});
}

TEST_F(ExecEdgeTest, BatchSingleRowTailBatchBitIdentical) {
  // 1025 rows: batch 1024 leaves a single-row tail batch; batch 4 leaves a
  // one-row tail too (1025 = 4*256 + 1); 1024 rows exactly fills the last
  // batch (no tail). Both shapes must be invisible in the output.
  for (int64_t i = 0; i < 1025; ++i) {
    database_.table(a_).AppendRow({i % 50, i});
    database_.table(b_).AppendRow({i % 50, i});
  }
  database_.BuildAllIndexes();
  qry::Predicate keep_most{{a_, 1}, qry::CmpOp::kNe, 500};
  ExpectBatchMatchesRow(
      [&] { return Join(PhysOp::kHashJoin, Scan(0, {keep_most}), Scan(1)); },
      {4, 1024, 1025, 2048});
}

TEST_F(ExecEdgeTest, BatchBoundariesStraddleJoinPartitionChunks) {
  // Enough rows to engage the pool (>= 4096) with duplicate-key groups of 7
  // that never align with the 1024-row batch boundaries or the pool's chunk
  // boundaries: match groups straddle both, and the output must still
  // concatenate back to the sequential row order at every pool size.
  for (int64_t i = 0; i < 6000; ++i) {
    database_.table(a_).AppendRow({i / 7, i});
    database_.table(b_).AppendRow({i / 7, i + 100000});
  }
  database_.BuildAllIndexes();
  ExpectBatchMatchesRow(
      [&] { return Join(PhysOp::kHashJoin, Scan(0), Scan(1)); }, {3, 1024},
      {1, 2, 4});
}

TEST_F(ExecEdgeTest, BatchIndexScanNeResidualBitIdentical) {
  // Index-driven scan with a kNe residual: the batch path seeds its
  // selection vector from the index row list (not the identity) and refines
  // it branch-free; must match the row path at every batch size.
  for (int64_t i = 0; i < 200; ++i) database_.table(a_).AppendRow({i, i % 4});
  for (int64_t i = 0; i < 200; ++i) database_.table(b_).AppendRow({i, 0});
  database_.BuildAllIndexes();
  qry::Predicate range{{a_, 0}, qry::CmpOp::kLt, 100};
  qry::Predicate ne{{a_, 1}, qry::CmpOp::kNe, 0};
  ExpectBatchMatchesRow(
      [&] {
        auto scan = Scan(0, {range, ne});
        scan->op = PhysOp::kIndexScan;
        scan->index_col = {a_, 0};
        return Join(PhysOp::kHashJoin, std::move(scan), Scan(1));
      },
      {1, 3, 7, 1024});
}

TEST_F(ExecEdgeTest, BatchRowLimitAbortsLikeRowPath) {
  // The overflow contract is part of bit-identity: the batch path must trip
  // the row limit on exactly the same plans as the row path, at every batch
  // and pool size.
  for (int i = 0; i < 100; ++i) {
    database_.table(a_).AppendRow({5, i});
    database_.table(b_).AppendRow({5, i});
  }
  database_.BuildAllIndexes();
  for (int batch : {1, 3, 1024}) {
    for (int pool : {1, 4}) {
      common::SetGlobalPoolSize(pool);
      auto plan = Join(PhysOp::kHashJoin, Scan(0), Scan(1));
      Executor executor(&database_, &query_);
      Executor::Options options;
      options.batch_size = batch;
      options.max_node_rows = 1000;
      Executor::RunResult run = executor.Run(plan.get(), options);
      EXPECT_TRUE(run.aborted) << "batch=" << batch << " pool=" << pool;
      EXPECT_EQ(run.result, nullptr) << "batch=" << batch << " pool=" << pool;
      // Just below the limit: must NOT abort (the trip condition is
      // strictly-greater, same as the row kernels).
      auto plan_ok = Join(PhysOp::kHashJoin, Scan(0), Scan(1));
      options.max_node_rows = 10000;
      Executor::RunResult ok = executor.Run(plan_ok.get(), options);
      EXPECT_FALSE(ok.aborted) << "batch=" << batch << " pool=" << pool;
      ASSERT_NE(ok.result, nullptr);
      EXPECT_EQ(ok.result->num_rows(), 10000u);
    }
  }
  common::SetGlobalPoolSize(0);
}

TEST_F(ExecEdgeTest, BatchSizeEnvKnobParses) {
  // unset/"0"/garbage/negative = off; "1" = default size; N >= 2 literal,
  // clamped at 1M rows.
  unsetenv("LPCE_EXEC_BATCH");
  EXPECT_EQ(BatchSizeFromEnv(), 0);
  setenv("LPCE_EXEC_BATCH", "", 1);
  EXPECT_EQ(BatchSizeFromEnv(), 0);
  setenv("LPCE_EXEC_BATCH", "0", 1);
  EXPECT_EQ(BatchSizeFromEnv(), 0);
  setenv("LPCE_EXEC_BATCH", "bogus", 1);
  EXPECT_EQ(BatchSizeFromEnv(), 0);
  setenv("LPCE_EXEC_BATCH", "3x", 1);
  EXPECT_EQ(BatchSizeFromEnv(), 0);
  setenv("LPCE_EXEC_BATCH", "-4", 1);
  EXPECT_EQ(BatchSizeFromEnv(), 0);
  setenv("LPCE_EXEC_BATCH", "1", 1);
  EXPECT_EQ(BatchSizeFromEnv(), kDefaultBatchSize);
  setenv("LPCE_EXEC_BATCH", "3", 1);
  EXPECT_EQ(BatchSizeFromEnv(), 3);
  setenv("LPCE_EXEC_BATCH", "999999999", 1);
  EXPECT_EQ(BatchSizeFromEnv(), 1 << 20);
  unsetenv("LPCE_EXEC_BATCH");
}

TEST_F(ExecEdgeTest, BatchSizeEnvKnobDrivesExecution) {
  // Options::batch_size = -1 (the default) must defer to the env knob, and
  // an explicit 0 must override it back to the row path.
  for (int64_t i = 0; i < 10; ++i) {
    database_.table(a_).AppendRow({i, i});
    database_.table(b_).AppendRow({i, i});
  }
  database_.BuildAllIndexes();
  setenv("LPCE_EXEC_BATCH", "3", 1);
  auto plan = Join(PhysOp::kHashJoin, Scan(0), Scan(1));
  Executor executor(&database_, &query_);
  EXPECT_EQ(executor.Execute(plan.get())->num_rows(), 10u);
  auto plan_row = Join(PhysOp::kHashJoin, Scan(0), Scan(1));
  Executor::Options options;
  options.batch_size = 0;
  Executor::RunResult row_run = executor.Run(plan_row.get(), options);
  unsetenv("LPCE_EXEC_BATCH");
  ASSERT_NE(row_run.result, nullptr);
  EXPECT_EQ(row_run.result->num_rows(), 10u);
}

TEST_F(ExecEdgeTest, LateMatEnvKnobParses) {
  // unset/""/"0"/garbage/negative = off; any positive integer = on.
  unsetenv("LPCE_EXEC_LATE_MAT");
  EXPECT_FALSE(LateMatFromEnv());
  setenv("LPCE_EXEC_LATE_MAT", "", 1);
  EXPECT_FALSE(LateMatFromEnv());
  setenv("LPCE_EXEC_LATE_MAT", "0", 1);
  EXPECT_FALSE(LateMatFromEnv());
  setenv("LPCE_EXEC_LATE_MAT", "bogus", 1);
  EXPECT_FALSE(LateMatFromEnv());
  setenv("LPCE_EXEC_LATE_MAT", "1x", 1);
  EXPECT_FALSE(LateMatFromEnv());
  setenv("LPCE_EXEC_LATE_MAT", "-1", 1);
  EXPECT_FALSE(LateMatFromEnv());
  setenv("LPCE_EXEC_LATE_MAT", "1", 1);
  EXPECT_TRUE(LateMatFromEnv());
  setenv("LPCE_EXEC_LATE_MAT", "2", 1);
  EXPECT_TRUE(LateMatFromEnv());
  unsetenv("LPCE_EXEC_LATE_MAT");
}

TEST_F(ExecEdgeTest, LateMatEnvKnobDrivesExecution) {
  // Options::late_materialization = -1 (the default) must defer to the env
  // knob — including promoting a row-path batch size to the default batch —
  // and an explicit 0 must override the knob back off. Either way the
  // result count matches.
  for (int64_t i = 0; i < 10; ++i) {
    database_.table(a_).AppendRow({i, i});
    database_.table(b_).AppendRow({i, i});
  }
  database_.BuildAllIndexes();
  setenv("LPCE_EXEC_LATE_MAT", "1", 1);
  auto plan = Join(PhysOp::kHashJoin, Scan(0), Scan(1));
  Executor executor(&database_, &query_);
  Executor::Options options;
  options.batch_size = 0;  // late promotes this to kDefaultBatchSize
  Executor::RunResult late_run = executor.Run(plan.get(), options);
  ASSERT_NE(late_run.result, nullptr);
  EXPECT_EQ(late_run.result->num_rows(), 10u);
  auto plan_off = Join(PhysOp::kHashJoin, Scan(0), Scan(1));
  options.late_materialization = 0;
  Executor::RunResult off_run = executor.Run(plan_off.get(), options);
  unsetenv("LPCE_EXEC_LATE_MAT");
  ASSERT_NE(off_run.result, nullptr);
  EXPECT_EQ(off_run.result->num_rows(), 10u);
  // The overridden run took the row path and materialized payload columns;
  // the env-driven run retained only row-id intermediates (smaller).
  EXPECT_EQ(off_run.result->num_rows(), late_run.result->num_rows());
}

}  // namespace
}  // namespace lpce::exec
