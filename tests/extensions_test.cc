// Tests for the future-work extensions: drifted data appends (Sec. 3.2) and
// refined re-optimization trigger policies (Sec. 6.2).
#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "engine/engine.h"
#include "workload/workload.h"

namespace lpce {
namespace {

TEST(DriftTest, AppendGrowsTablesAndKeepsFKIntegrity) {
  db::SynthImdbOptions opts;
  opts.scale = 0.03;
  auto database = db::BuildSynthImdb(opts);
  const db::Catalog& cat = database->catalog();
  std::vector<size_t> before(cat.num_tables());
  for (int32_t t = 0; t < cat.num_tables(); ++t) {
    before[t] = database->table(t).num_rows();
  }

  db::AppendSynthImdbDrift(database.get(), 0.25, 99);

  const int32_t title = cat.FindTable("title");
  const int32_t ci = cat.FindTable("cast_info");
  EXPECT_GT(database->table(title).num_rows(), before[title]);
  EXPECT_GT(database->table(ci).num_rows(), before[ci]);
  // Dimensions are untouched.
  const int32_t cn = cat.FindTable("company_name");
  EXPECT_EQ(database->table(cn).num_rows(), before[cn]);

  // FK integrity still holds for every edge (indexes were rebuilt).
  for (const auto& edge : cat.join_edges()) {
    const db::Table& fk_table = database->table(edge.left.table);
    const db::HashIndex& pk_index = database->hash_index(edge.right);
    size_t misses = 0;
    for (int64_t v : fk_table.column(edge.left.column)) {
      if (pk_index.Lookup(v).empty()) ++misses;
    }
    EXPECT_EQ(misses, 0u) << cat.ColumnName(edge.left);
  }
}

TEST(DriftTest, NewDataHasDriftedYearDistribution) {
  db::SynthImdbOptions opts;
  opts.scale = 0.03;
  auto database = db::BuildSynthImdb(opts);
  const int32_t title = database->catalog().FindTable("title");
  const size_t before = database->table(title).num_rows();
  db::AppendSynthImdbDrift(database.get(), 0.25, 99);
  const db::Table& t = database->table(title);
  // All appended movies are post-2020 (the original generator stops at 2020).
  for (size_t r = before; r < t.num_rows(); ++r) {
    EXPECT_GE(t.at(r, 2), 2021);
  }
}

TEST(DriftTest, QueriesStillExecuteAfterDrift) {
  db::SynthImdbOptions opts;
  opts.scale = 0.03;
  auto database = db::BuildSynthImdb(opts);
  db::AppendSynthImdbDrift(database.get(), 0.3, 7);
  wk::GeneratorOptions gen;
  gen.seed = 8;
  wk::QueryGenerator generator(database.get(), gen);
  auto workload = generator.GenerateLabeled(4, 3, 6);
  for (const auto& labeled : workload) {
    // Labels come from actual execution, so this validates end to end.
    EXPECT_TRUE(labeled.true_cards.count(labeled.query.AllRels()) > 0);
  }
}

class TriggerPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.03;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
    wk::GeneratorOptions gen;
    gen.seed = 61;
    gen.require_nonempty = true;
    wk::QueryGenerator generator(database_.get(), gen);
    workload_ = generator.GenerateLabeled(6, 5, 6);
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
  std::vector<wk::LabeledQuery> workload_;
};

// Underestimates every join subset 100x: plain policy must trip; the
// underestimates-only policy must also trip (these ARE underestimates);
// an overestimating estimator must NOT trip under underestimates_only.
class BiasedEstimator : public card::CardinalityEstimator {
 public:
  BiasedEstimator(card::CardinalityEstimator* base, double factor)
      : base_(base), factor_(factor) {}
  std::string name() const override { return "biased"; }
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    const double est = base_->EstimateSubset(query, rels);
    return qry::PopCount(rels) > 1 ? std::max(1.0, est * factor_) : est;
  }

 private:
  card::CardinalityEstimator* base_;
  double factor_;
};

TEST_F(TriggerPolicyTest, UnderestimatesOnlySkipsOverestimates) {
  card::HistogramEstimator histogram(&stats_);
  BiasedEstimator over(&histogram, 1e4);  // gross OVERestimates
  eng::Engine engine(database_.get(), opt::CostModel{});
  eng::RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = 10.0;
  config.underestimates_only = true;
  for (const auto& labeled : workload_) {
    eng::RunStats stats =
        engine.RunQuery(labeled.query, &over, nullptr, config);
    EXPECT_EQ(stats.num_reopts, 0) << "overestimates must not trigger";
    EXPECT_EQ(stats.result_count, labeled.FinalCard());
  }
}

TEST_F(TriggerPolicyTest, UnderestimatesStillTrigger) {
  card::HistogramEstimator histogram(&stats_);
  BiasedEstimator under(&histogram, 1e-4);  // gross UNDERestimates
  eng::Engine engine(database_.get(), opt::CostModel{});
  eng::RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = 10.0;
  config.underestimates_only = true;
  int total_reopts = 0;
  for (const auto& labeled : workload_) {
    eng::RunStats stats =
        engine.RunQuery(labeled.query, &under, nullptr, config);
    total_reopts += stats.num_reopts;
    EXPECT_EQ(stats.result_count, labeled.FinalCard());
  }
  EXPECT_GT(total_reopts, 0);
}

TEST_F(TriggerPolicyTest, MinTripRowsSuppressesSmallNodes) {
  card::HistogramEstimator histogram(&stats_);
  BiasedEstimator under(&histogram, 1e-4);
  eng::Engine engine(database_.get(), opt::CostModel{});
  eng::RunConfig config;
  config.enable_reopt = true;
  config.qerror_threshold = 10.0;
  config.min_trip_rows = 100000000;  // nothing is this large
  for (const auto& labeled : workload_) {
    eng::RunStats stats =
        engine.RunQuery(labeled.query, &under, nullptr, config);
    EXPECT_EQ(stats.num_reopts, 0);
    EXPECT_EQ(stats.result_count, labeled.FinalCard());
  }
}

}  // namespace
}  // namespace lpce
