// Planner tests: DP correctness (vs. an oracle), operator/scan choice,
// estimation-pool memoization, and pseudo-relation re-planning.
#include <gtest/gtest.h>

#include "card/histogram_estimator.h"
#include "exec/executor.h"
#include "optimizer/planner.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace lpce::opt {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::SynthImdbOptions opts;
    opts.scale = 0.05;
    database_ = db::BuildSynthImdb(opts);
    stats_.Build(*database_);
  }

  qry::Query MakeFourTableQuery() {
    const db::Catalog& cat = database_->catalog();
    const int32_t t = cat.FindTable("title");
    const int32_t mc = cat.FindTable("movie_companies");
    const int32_t ci = cat.FindTable("cast_info");
    const int32_t cn = cat.FindTable("company_name");
    qry::Query query;
    query.tables = {t, mc, ci, cn};
    query.joins = {{{mc, 1}, {t, 0}}, {{ci, 1}, {t, 0}}, {{mc, 2}, {cn, 0}}};
    query.predicates = {{{t, 2}, qry::CmpOp::kGt, 2010}};
    return query;
  }

  std::unique_ptr<db::Database> database_;
  stats::DatabaseStats stats_;
};

// Counts estimator calls to verify the estimation pool memoizes.
class CountingEstimator : public card::CardinalityEstimator {
 public:
  explicit CountingEstimator(card::CardinalityEstimator* base) : base_(base) {}
  std::string name() const override { return "counting"; }
  double EstimateSubset(const qry::Query& query, qry::RelSet rels) override {
    ++calls_;
    return base_->EstimateSubset(query, rels);
  }
  int calls() const { return calls_; }

 private:
  card::CardinalityEstimator* base_;
  int calls_ = 0;
};

TEST_F(PlannerTest, ProducesExecutablePlanCoveringAllTables) {
  card::HistogramEstimator estimator(&stats_);
  Planner planner(database_.get(), CostModel{});
  qry::Query query = MakeFourTableQuery();
  PlanResult result = planner.Plan(query, &estimator);
  ASSERT_NE(result.plan, nullptr);
  EXPECT_EQ(result.plan->rels, query.AllRels());
  // The plan must execute and agree with the canonical reference plan.
  exec::Executor executor(database_.get(), &query);
  const uint64_t count = executor.Execute(result.plan.get())->num_rows();
  auto reference = exec::BuildCanonicalHashPlan(query);
  EXPECT_EQ(count, executor.Execute(reference.get())->num_rows());
}

TEST_F(PlannerTest, EstimationPoolMemoizesPerSubset) {
  card::HistogramEstimator histogram(&stats_);
  CountingEstimator counting(&histogram);
  Planner planner(database_.get(), CostModel{});
  qry::Query query = MakeFourTableQuery();
  PlanResult result = planner.Plan(query, &counting);
  // Connected subsets of this 4-table join tree: a handful; every subset is
  // estimated exactly once regardless of how many partitions the DP tried.
  EXPECT_EQ(static_cast<size_t>(counting.calls()), result.num_estimates);
  EXPECT_LE(counting.calls(), 15);
}

TEST_F(PlannerTest, OracleFindsCheaperOrEqualPlanThanBadEstimator) {
  // With a deliberately terrible estimator, execution should not beat the
  // oracle-planned execution (measured in executor work via actual rows).
  qry::Query query = MakeFourTableQuery();
  wk::LabeledQuery labeled;
  labeled.query = query;
  wk::LabelQuery(*database_, &labeled);
  std::unordered_map<qry::RelSet, double> truth;
  for (const auto& [rels, card] : labeled.true_cards) {
    truth[rels] = static_cast<double>(card);
  }
  // The oracle lacks labels for off-canonical subsets; fill via execution of
  // the histogram estimate instead — simply check the oracle plan executes.
  card::OracleEstimator oracle(truth);
  Planner planner(database_.get(), CostModel{});
  PlanResult result = planner.Plan(query, &oracle);
  exec::Executor executor(database_.get(), &query);
  EXPECT_EQ(executor.Execute(result.plan.get())->num_rows(), labeled.FinalCard());
}

TEST_F(PlannerTest, NestedLoopOnlyForTinyOuter) {
  // Force cardinalities: one side tiny -> NL; both large -> hash/merge.
  CostModel cost;
  const double tiny = 3, large = 20000, out = 100;
  const double nl = cost.JoinCost(exec::PhysOp::kNestLoopJoin, tiny, 500, out);
  const double hash = cost.JoinCost(exec::PhysOp::kHashJoin, tiny, 500, out);
  EXPECT_LT(nl, hash);
  const double nl2 = cost.JoinCost(exec::PhysOp::kNestLoopJoin, large, large, out);
  const double hash2 = cost.JoinCost(exec::PhysOp::kHashJoin, large, large, out);
  EXPECT_GT(nl2, hash2);
}

TEST_F(PlannerTest, IndexScanChosenForSelectivePredicate) {
  const db::Catalog& cat = database_->catalog();
  const int32_t t = cat.FindTable("title");
  qry::Query query;
  const int32_t mc = cat.FindTable("movie_companies");
  query.tables = {t, mc};
  query.joins = {{{mc, 1}, {t, 0}}};
  // Highly selective equality predicate on title.id.
  query.predicates = {{{t, 0}, qry::CmpOp::kEq, 5}};
  card::HistogramEstimator estimator(&stats_);
  Planner planner(database_.get(), CostModel{});
  PlanResult result = planner.Plan(query, &estimator);
  // Find the title scan node.
  std::vector<const exec::PlanNode*> nodes;
  exec::PostOrderPlan(result.plan.get(), &nodes);
  bool found_index_scan = false;
  for (const auto* node : nodes) {
    if (node->table_pos == 0 && node->op == exec::PhysOp::kIndexScan) {
      found_index_scan = true;
    }
  }
  EXPECT_TRUE(found_index_scan);
}

TEST_F(PlannerTest, PlanUnitsUsesMaterializedIntermediates) {
  qry::Query query = MakeFourTableQuery();
  card::HistogramEstimator estimator(&stats_);
  Planner planner(database_.get(), CostModel{});

  // Materialize title >< movie_companies via a first plan execution.
  PlanResult first = planner.Plan(query, &estimator);
  exec::Executor executor(database_.get(), &query);
  const uint64_t expect = executor.Execute(first.plan.get())->num_rows();

  // Build the intermediate with the columns the remaining joins need.
  auto sub = exec::BuildCanonicalHashPlan(query);
  exec::Executor::RunResult run = executor.Run(sub.get(), {});
  // Find the node covering {title, mc} = positions {0, 1} if present;
  // otherwise use any internal node.
  const exec::PlanNode* boundary = nullptr;
  std::vector<const exec::PlanNode*> nodes;
  exec::PostOrderPlan(static_cast<const exec::PlanNode*>(sub.get()), &nodes);
  for (const auto* node : nodes) {
    if (node->is_join() && node->rels != query.AllRels()) boundary = node;
  }
  ASSERT_NE(boundary, nullptr);

  std::vector<PlanUnit> units;
  PlanUnit pseudo;
  pseudo.rels = boundary->rels;
  pseudo.materialized = run.finished.at(boundary);
  pseudo.known_card = static_cast<double>(boundary->actual_card);
  units.push_back(pseudo);
  for (int pos = 0; pos < query.num_tables(); ++pos) {
    if (qry::Contains(boundary->rels, pos)) continue;
    PlanUnit unit;
    unit.rels = qry::Bit(pos);
    unit.table_pos = pos;
    units.push_back(unit);
  }
  PlanResult replanned = planner.PlanUnits(query, &estimator, units);
  ASSERT_NE(replanned.plan, nullptr);
  EXPECT_EQ(executor.Execute(replanned.plan.get())->num_rows(), expect);
}

}  // namespace
}  // namespace lpce::opt
