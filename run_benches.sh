#!/bin/sh
# Runs every bench binary in sequence (the cached world must exist or the
# first binary will build it). Usage: ./run_benches.sh [output-file]
out="${1:-bench_output.txt}"
: > "$out"
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "==== $b ====" | tee -a "$out"
  "$b" 2>/dev/null | tee -a "$out"
done
