#!/bin/sh
# Runs every bench binary in sequence (the cached world must exist or the
# first binary will build it). The glob picks up all of build/bench/bench_*,
# including bench_exec_batch (row vs batch vs late-materialization T_E and
# peak intermediate bytes), bench_plancache, and bench_serving.
# Usage: ./run_benches.sh [output-file]
out="${1:-bench_output.txt}"
: > "$out"
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "==== $b ====" | tee -a "$out"
  "$b" 2>/dev/null | tee -a "$out"
done
