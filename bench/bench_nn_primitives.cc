// Microbenchmarks for the nn substrate: the matrix product, the two
// recurrent cells (graph vs. inference fast path), and a full training step.
// These quantify the two claims the library's design leans on: SRU needs
// fewer matrix products than LSTM (paper Sec. 4.2), and the inference fast
// path avoids the autograd graph entirely.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/adam.h"
#include "nn/cells.h"
#include "nn/kernels.h"

namespace lpce::nn {
namespace {

Matrix RandomMatrix(Rng* rng, size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->UniformDouble(-1.0, 1.0));
  }
  return m;
}

void BM_MatMul(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(1);
  Matrix a = RandomMatrix(&rng, dim, dim);
  Matrix b = RandomMatrix(&rng, dim, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * dim * dim *
                          dim);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(96)->Arg(256);

// The zero-skip record (PR 4): the dense MatMul path used to branch on
// a == 0.0f every inner iteration. These lanes compare the branch-free
// blocked kernel against the documented zero-skip variant on dense inputs
// (the model's activations — the case the branch taxed) and on 90%-zero
// inputs (one-hot-ish encoder rows — the case it was meant to help).
void GemmKernelLane(benchmark::State& state, double density, bool zero_skip) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(6);
  Matrix a = RandomMatrix(&rng, dim, dim);
  Matrix b = RandomMatrix(&rng, dim, dim);
  for (size_t i = 0; i < a.size(); ++i) {
    if (rng.UniformDouble() > density) a.data()[i] = 0.0f;
  }
  Matrix out(dim, dim);
  for (auto _ : state) {
    if (zero_skip) {
      kernels::GemmZeroSkip(a.data(), dim, dim, b.data(), dim, out.data());
    } else {
      kernels::Gemm(a.data(), dim, dim, b.data(), dim, out.data());
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * dim * dim *
                          dim);
}

void BM_GemmDenseInput(benchmark::State& s) { GemmKernelLane(s, 1.0, false); }
void BM_GemmZeroSkipDenseInput(benchmark::State& s) {
  GemmKernelLane(s, 1.0, true);
}
void BM_GemmSparseInput(benchmark::State& s) { GemmKernelLane(s, 0.1, false); }
void BM_GemmZeroSkipSparseInput(benchmark::State& s) {
  GemmKernelLane(s, 0.1, true);
}
BENCHMARK(BM_GemmDenseInput)->Arg(32)->Arg(96)->Arg(256);
BENCHMARK(BM_GemmZeroSkipDenseInput)->Arg(32)->Arg(96)->Arg(256);
BENCHMARK(BM_GemmSparseInput)->Arg(96);
BENCHMARK(BM_GemmZeroSkipSparseInput)->Arg(96);

void BM_SruStepFast(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(2);
  ParamStore store;
  TreeSruCell cell(&store, "sru", dim, &rng);
  Matrix x = RandomMatrix(&rng, 1, dim);
  Matrix cl = RandomMatrix(&rng, 1, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.Apply(x, &cl, nullptr));
  }
}
BENCHMARK(BM_SruStepFast)->Arg(32)->Arg(96);

void BM_LstmStepFast(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(3);
  ParamStore store;
  TreeLstmCell cell(&store, "lstm", dim, &rng);
  Matrix x = RandomMatrix(&rng, 1, dim);
  Matrix cl = RandomMatrix(&rng, 1, dim);
  Matrix hl = RandomMatrix(&rng, 1, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.Apply(x, &cl, &hl, nullptr, nullptr));
  }
}
BENCHMARK(BM_LstmStepFast)->Arg(32)->Arg(96);

void BM_SruStepGraph(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(4);
  ParamStore store;
  TreeSruCell cell(&store, "sru", dim, &rng);
  Tensor x = MakeTensor(RandomMatrix(&rng, 1, dim));
  Tensor cl = MakeTensor(RandomMatrix(&rng, 1, dim));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cell.Step(x, cl, nullptr));
  }
}
BENCHMARK(BM_SruStepGraph)->Arg(32)->Arg(96);

void BM_TrainStepChain(benchmark::State& state) {
  // One forward+backward+Adam step through an 8-deep SRU chain — the inner
  // loop of LPCE-I training.
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(5);
  ParamStore store;
  TreeSruCell cell(&store, "sru", dim, &rng);
  Adam adam(&store, {.lr = 1e-3f});
  std::vector<Tensor> inputs;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(MakeTensor(RandomMatrix(&rng, 1, dim)));
  }
  for (auto _ : state) {
    Tensor c, h;
    for (const Tensor& x : inputs) {
      CellOutput out = cell.Step(x, c, nullptr);
      c = out.c;
      h = out.h;
    }
    Tensor loss = Sum(h);
    Backward(loss);
    adam.Step();
  }
}
BENCHMARK(BM_TrainStepChain)->Arg(32)->Arg(96)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lpce::nn

BENCHMARK_MAIN();
