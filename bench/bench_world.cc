#include "bench_world.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace lpce::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

constexpr int kCacheVersion = 5;

std::string MetaString(const WorldOptions& options) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "v%d scale=%.4f train=%d test=%d seed=%llu",
                kCacheVersion, options.scale, options.train_queries,
                options.test_queries,
                static_cast<unsigned long long>(options.seed));
  return buf;
}

bool CacheValid(const WorldOptions& options) {
  std::ifstream meta(options.cache_dir + "/meta.txt");
  if (!meta.good()) return false;
  std::string line;
  std::getline(meta, line);
  return line == MetaString(options);
}

}  // namespace

WorldOptions WorldOptions::FromEnv() {
  WorldOptions options;
  options.scale = EnvDouble("LPCE_SCALE", 1.0);
  options.train_queries = EnvInt("LPCE_TRAIN_QUERIES", 800);
  options.test_queries = EnvInt("LPCE_TEST_QUERIES", 40);
  options.cache_dir = EnvString("LPCE_CACHE_DIR", "lpce_cache_v1");
  options.num_threads = EnvInt("LPCE_NUM_THREADS", 0);
  return options;
}

model::TreeModelConfig World::StudentConfig() const {
  model::TreeModelConfig config;
  config.feature_dim = encoder->dim();
  config.dim = 32;
  config.embed_hidden = 32;
  config.out_hidden = 64;
  config.log_max_card = log_max_card;
  config.seed = 11;
  return config;
}

model::TreeModelConfig World::TeacherConfig(bool lstm) const {
  model::TreeModelConfig config;
  config.feature_dim = encoder->dim();
  config.dim = 96;
  config.embed_hidden = 96;
  config.out_hidden = 256;
  config.use_lstm = lstm;
  config.log_max_card = log_max_card;
  config.seed = 22;
  return config;
}

namespace {

void BuildWorkloads(World* world) {
  const WorldOptions& options = world->options;
  const std::string dir = options.cache_dir;
  if (CacheValid(options)) {
    LPCE_CHECK(wk::LoadWorkload(dir + "/train.bin", &world->train).ok());
    for (int joins = 2; joins <= 8; ++joins) {
      LPCE_CHECK(wk::LoadWorkload(dir + "/test_" + std::to_string(joins) + ".bin",
                                  &world->test_by_joins[joins])
                     .ok());
    }
    return;
  }
  LPCE_LOG(Info) << "bench world: generating workloads (no valid cache)";
  WallTimer timer;
  // Train: 6-8 joins, as in the paper (Sec. 7.1); the node-wise loss
  // provides supervision for the smaller sub-plans. Training queries are
  // drawn from the same non-empty-result distribution as the test sets (the
  // paper's workloads are result-producing queries with 1s-1500s runtimes).
  wk::GeneratorOptions gen;
  gen.seed = options.seed;
  gen.require_nonempty = true;
  wk::QueryGenerator train_gen(world->database.get(), gen);
  world->train = train_gen.GenerateLabeled(options.train_queries, 6, 8);
  // Test: one set per join count, non-empty results (the paper selects test
  // queries with non-trivial execution behaviour).
  for (int joins = 2; joins <= 8; ++joins) {
    wk::GeneratorOptions test_opts;
    test_opts.seed = options.seed + 1000 + static_cast<uint64_t>(joins);
    test_opts.require_nonempty = true;
    wk::QueryGenerator test_gen(world->database.get(), test_opts);
    world->test_by_joins[joins] =
        test_gen.GenerateLabeled(options.test_queries, joins, joins);
  }
  LPCE_LOG(Info) << "workload generation took " << timer.ElapsedSeconds() << "s";

  std::filesystem::create_directories(dir);
  LPCE_CHECK(wk::SaveWorkload(world->train, dir + "/train.bin").ok());
  for (int joins = 2; joins <= 8; ++joins) {
    LPCE_CHECK(wk::SaveWorkload(world->test_by_joins[joins],
                                dir + "/test_" + std::to_string(joins) + ".bin")
                   .ok());
  }
}

void BuildModels(World* world) {
  const std::string dir = world->options.cache_dir;
  const bool cached = CacheValid(world->options);

  world->lpce_s = std::make_unique<model::TreeModel>(world->encoder.get(),
                                                     world->TeacherConfig());
  {
    auto cfg = world->TeacherConfig(/*lstm=*/true);
    cfg.seed = 23;
    world->lpce_t = std::make_unique<model::TreeModel>(world->encoder.get(), cfg);
  }
  {
    auto cfg = world->StudentConfig();
    cfg.seed = 12;
    world->lpce_c = std::make_unique<model::TreeModel>(world->encoder.get(), cfg);
  }
  world->lpce_i = std::make_unique<model::TreeModel>(world->encoder.get(),
                                                     world->StudentConfig());
  {
    auto cfg = world->TeacherConfig();
    cfg.seed = 24;
    world->lpce_q = std::make_unique<model::TreeModel>(world->encoder.get(), cfg);
  }
  {
    auto cfg = world->TeacherConfig(/*lstm=*/true);
    cfg.seed = 25;
    world->tlstm = std::make_unique<model::TreeModel>(world->encoder.get(), cfg);
  }

  card::MscnConfig mscn_cfg;
  mscn_cfg.hidden = 64;
  mscn_cfg.log_max_card = world->log_max_card;
  world->mscn = std::make_unique<card::MscnModel>(&world->database->catalog(),
                                                  world->encoder.get(), mscn_cfg);
  mscn_cfg.seed = 10;
  world->flowloss = std::make_unique<card::MscnModel>(
      &world->database->catalog(), world->encoder.get(), mscn_cfg);
  mscn_cfg.seed = 13;
  mscn_cfg.extra_inputs = 1;
  world->hybrid_correction = std::make_unique<card::MscnModel>(
      &world->database->catalog(), world->encoder.get(), mscn_cfg);

  world->lpce_r = std::make_unique<model::LpceR>(
      world->encoder.get(), world->StudentConfig(), model::RefinerMode::kFull);
  world->lpce_r_single = std::make_unique<model::LpceR>(
      world->encoder.get(), world->StudentConfig(), model::RefinerMode::kSingle);
  world->lpce_r_two = std::make_unique<model::LpceR>(
      world->encoder.get(), world->StudentConfig(), model::RefinerMode::kTwo);

  if (cached) {
    LPCE_CHECK(world->lpce_s->params().LoadFromFile(dir + "/lpce_s.bin").ok());
    LPCE_CHECK(world->lpce_t->params().LoadFromFile(dir + "/lpce_t.bin").ok());
    LPCE_CHECK(world->lpce_c->params().LoadFromFile(dir + "/lpce_c.bin").ok());
    LPCE_CHECK(world->lpce_i->params().LoadFromFile(dir + "/lpce_i.bin").ok());
    LPCE_CHECK(world->lpce_q->params().LoadFromFile(dir + "/lpce_q.bin").ok());
    LPCE_CHECK(world->tlstm->params().LoadFromFile(dir + "/tlstm.bin").ok());
    LPCE_CHECK(world->mscn->params().LoadFromFile(dir + "/mscn.bin").ok());
    LPCE_CHECK(world->flowloss->params().LoadFromFile(dir + "/flowloss.bin").ok());
    LPCE_CHECK(
        world->hybrid_correction->params().LoadFromFile(dir + "/hybrid.bin").ok());
    LPCE_CHECK(world->lpce_r->Load(dir + "/lpce_r").ok());
    LPCE_CHECK(world->lpce_r_single->Load(dir + "/lpce_r_single").ok());
    LPCE_CHECK(world->lpce_r_two->Load(dir + "/lpce_r_two").ok());
    return;
  }

  const db::Database& database = *world->database;
  const auto& train = world->train;
  WallTimer timer;

  LPCE_LOG(Info) << "training LPCE-S (teacher, SRU large, node-wise)";
  model::TrainOptions node_wise;
  node_wise.epochs = 24;
  node_wise.tag = "lpce_s";
  world->train_stats.Record(
      "lpce_s", model::TrainTreeModel(world->lpce_s.get(), database, train,
                                      node_wise));

  LPCE_LOG(Info) << "training LPCE-T (LSTM large, node-wise)";
  node_wise.tag = "lpce_t";
  world->train_stats.Record(
      "lpce_t", model::TrainTreeModel(world->lpce_t.get(), database, train,
                                      node_wise));

  LPCE_LOG(Info) << "training LPCE-C (SRU small, direct)";
  node_wise.tag = "lpce_c";
  world->train_stats.Record(
      "lpce_c", model::TrainTreeModel(world->lpce_c.get(), database, train,
                                      node_wise));

  LPCE_LOG(Info) << "training LPCE-I (distilled from LPCE-S)";
  model::DistillOptions distill;
  distill.hint_epochs = 8;
  distill.predict_epochs = 60;
  distill.tag = "lpce_i";
  world->train_stats.Record(
      "lpce_i", model::DistillTreeModel(world->lpce_i.get(), *world->lpce_s,
                                        database, train, distill));

  LPCE_LOG(Info) << "training LPCE-Q (SRU large, query-wise)";
  model::TrainOptions query_wise = node_wise;
  query_wise.node_wise = false;
  query_wise.tag = "lpce_q";
  world->train_stats.Record(
      "lpce_q", model::TrainTreeModel(world->lpce_q.get(), database, train,
                                      query_wise));

  LPCE_LOG(Info) << "training TLSTM (LSTM large, query-wise)";
  query_wise.tag = "tlstm";
  world->train_stats.Record(
      "tlstm", model::TrainTreeModel(world->tlstm.get(), database, train,
                                     query_wise));

  LPCE_LOG(Info) << "training MSCN";
  card::MscnTrainOptions mscn_opts;
  mscn_opts.epochs = 8;
  card::TrainMscn(world->mscn.get(), train, mscn_opts);

  LPCE_LOG(Info) << "training Flow-Loss (cost-weighted MSCN)";
  mscn_opts.cost_weighted = true;
  card::TrainMscn(world->flowloss.get(), train, mscn_opts);

  LPCE_LOG(Info) << "training UAE* correction net (hybrid)";
  card::JoinSampleEstimator train_sampler("uae-train", world->database.get(),
                                          world->uae_walks, 555);
  card::MscnTrainOptions hybrid_opts;
  hybrid_opts.epochs = 8;
  hybrid_opts.extra_fn = [&](const qry::Query& q, qry::RelSet rels) {
    return std::vector<float>{static_cast<float>(
        world->hybrid_correction->CardToY(train_sampler.EstimateSubset(q, rels)))};
  };
  card::TrainMscn(world->hybrid_correction.get(), train, hybrid_opts);

  LPCE_LOG(Info) << "training LPCE-R (full, content from LPCE-I)";
  model::LpceRTrainOptions lpce_r_opts;
  lpce_r_opts.pretrain = node_wise;
  lpce_r_opts.pretrain.tag = "lpce_r_pretrain";
  lpce_r_opts.refine_epochs = 8;
  lpce_r_opts.prefixes_per_query = 4;
  lpce_r_opts.pretrained_content = world->lpce_i.get();
  lpce_r_opts.tag = "lpce_r";
  world->train_stats.Record(
      "lpce_r", model::TrainLpceR(world->lpce_r.get(), database, train,
                                  lpce_r_opts));

  LPCE_LOG(Info) << "training LPCE-R-Single (ablation)";
  model::LpceRTrainOptions single_opts = lpce_r_opts;
  single_opts.pretrained_content = nullptr;
  single_opts.tag = "lpce_r_single";
  world->train_stats.Record(
      "lpce_r_single", model::TrainLpceR(world->lpce_r_single.get(), database,
                                         train, single_opts));

  LPCE_LOG(Info) << "training LPCE-R-Two (ablation)";
  single_opts.tag = "lpce_r_two";
  world->train_stats.Record(
      "lpce_r_two", model::TrainLpceR(world->lpce_r_two.get(), database, train,
                                      single_opts));

  LPCE_LOG(Info) << "model training took " << timer.ElapsedSeconds() << "s";

  LPCE_CHECK(world->lpce_s->params().SaveToFile(dir + "/lpce_s.bin").ok());
  LPCE_CHECK(world->lpce_t->params().SaveToFile(dir + "/lpce_t.bin").ok());
  LPCE_CHECK(world->lpce_c->params().SaveToFile(dir + "/lpce_c.bin").ok());
  LPCE_CHECK(world->lpce_i->params().SaveToFile(dir + "/lpce_i.bin").ok());
  LPCE_CHECK(world->lpce_q->params().SaveToFile(dir + "/lpce_q.bin").ok());
  LPCE_CHECK(world->tlstm->params().SaveToFile(dir + "/tlstm.bin").ok());
  LPCE_CHECK(world->mscn->params().SaveToFile(dir + "/mscn.bin").ok());
  LPCE_CHECK(world->flowloss->params().SaveToFile(dir + "/flowloss.bin").ok());
  LPCE_CHECK(
      world->hybrid_correction->params().SaveToFile(dir + "/hybrid.bin").ok());
  LPCE_CHECK(world->lpce_r->Save(dir + "/lpce_r").ok());
  LPCE_CHECK(world->lpce_r_single->Save(dir + "/lpce_r_single").ok());
  LPCE_CHECK(world->lpce_r_two->Save(dir + "/lpce_r_two").ok());

  // Write meta last: its presence marks a complete cache.
  std::ofstream meta(dir + "/meta.txt");
  meta << MetaString(world->options) << "\n";
}

}  // namespace

const World& GetWorld() {
  static World* world = [] {
    auto* w = new World();
    w->options = WorldOptions::FromEnv();
    common::SetGlobalPoolSize(w->options.num_threads);
    LPCE_LOG(Info) << "bench world: scale=" << w->options.scale
                   << " train=" << w->options.train_queries
                   << " test/joins=" << w->options.test_queries
                   << " cache=" << w->options.cache_dir
                   << " threads=" << common::GlobalPool().size();
    db::SynthImdbOptions db_opts;
    db_opts.seed = w->options.seed;
    db_opts.scale = w->options.scale;
    w->database = db::BuildSynthImdb(db_opts);
    w->stats.Build(*w->database);
    w->encoder = std::make_unique<model::FeatureEncoder>(&w->database->catalog(),
                                                         &w->stats);
    BuildWorkloads(w);
    w->log_max_card = std::log1p(static_cast<double>(wk::MaxCardinality(w->train)));
    BuildModels(w);
    return w;
  }();
  return *world;
}

std::vector<EstimatorEntry> MakeEstimatorLineup(const World& world) {
  std::vector<EstimatorEntry> lineup;
  auto add = [&](std::string name,
                 std::unique_ptr<card::CardinalityEstimator> estimator) {
    EstimatorEntry entry;
    entry.name = std::move(name);
    entry.estimator = std::move(estimator);
    lineup.push_back(std::move(entry));
  };
  add("PostgreSQL", std::make_unique<card::HistogramEstimator>(&world.stats));
  add("DeepDB*", std::make_unique<card::JoinSampleEstimator>(
                     "DeepDB*", world.database.get(), world.deepdb_walks, 101));
  add("NeuroCard*",
      std::make_unique<card::JoinSampleEstimator>(
          "NeuroCard*", world.database.get(), world.neurocard_walks, 102));
  add("FLAT*", std::make_unique<card::JoinSampleEstimator>(
                   "FLAT*", world.database.get(), world.flat_walks, 103));
  {
    // UAE*: the hybrid owns its sampler.
    struct OwningHybrid : public card::CardinalityEstimator {
      explicit OwningHybrid(const World& w)
          : sampler("uae-sampler", w.database.get(), w.uae_walks, 104),
            hybrid("UAE*", &sampler, w.hybrid_correction.get()) {}
      std::string name() const override { return "UAE*"; }
      void PrepareQuery(const qry::Query& q) override {
        hybrid.PrepareQuery(q);
      }
      double EstimateSubset(const qry::Query& q, qry::RelSet rels) override {
        return hybrid.EstimateSubset(q, rels);
      }
      card::JoinSampleEstimator sampler;
      card::HybridSampleEstimator hybrid;
    };
    add("UAE*", std::make_unique<OwningHybrid>(world));
  }
  add("MSCN", std::make_unique<card::MscnEstimator>("MSCN", world.mscn.get()));
  add("Flow-Loss",
      std::make_unique<card::MscnEstimator>("Flow-Loss", world.flowloss.get()));
  add("TLSTM", std::make_unique<model::TreeModelEstimator>(
                   "TLSTM", world.tlstm.get(), world.database.get()));
  add("LPCE-I", std::make_unique<model::TreeModelEstimator>(
                    "LPCE-I", world.lpce_i.get(), world.database.get()));
  {
    EstimatorEntry entry;
    entry.name = "LPCE-R";
    entry.estimator = std::make_unique<model::TreeModelEstimator>(
        "LPCE-I", world.lpce_i.get(), world.database.get());
    entry.refiner = std::make_unique<model::LpceREstimator>(world.lpce_r.get(),
                                                            world.database.get());
    entry.enable_reopt = true;
    entry.run_config.enable_reopt = true;
    entry.run_config.underestimates_only = true;
    entry.run_config.min_trip_rows = 2000;
    entry.run_config.consider_restart = false;
    lineup.push_back(std::move(entry));
  }
  return lineup;
}

namespace {
std::string g_trace_json_path;    // --trace_json=PATH; empty = off
std::string g_metrics_json_path;  // --metrics_json=PATH; empty = off
}  // namespace

void ParseBenchFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--trace_json=";
    if (arg.rfind(prefix, 0) == 0) {
      g_trace_json_path = arg.substr(prefix.size());
      continue;
    }
    const std::string metrics_prefix = "--metrics_json=";
    if (arg.rfind(metrics_prefix, 0) == 0) {
      g_metrics_json_path = arg.substr(metrics_prefix.size());
      continue;
    }
    std::fprintf(stderr,
                 "unknown flag %s\nusage: %s [--trace_json=PATH] "
                 "[--metrics_json=PATH]\n",
                 arg.c_str(), argv[0]);
    std::exit(2);
  }
}

const std::string& MetricsJsonPath() { return g_metrics_json_path; }

std::vector<eng::RunStats> RunWorkload(const World& world,
                                       const EstimatorEntry& entry,
                                       const std::vector<wk::LabeledQuery>& queries) {
  eng::Engine engine(world.database.get(), opt::CostModel{});
  eng::RunConfig config = entry.run_config;
  config.enable_reopt = entry.enable_reopt;
  std::vector<eng::RunStats> out;
  out.reserve(queries.size());
  std::ofstream trace_out;
  if (!g_trace_json_path.empty()) {
    trace_out.open(g_trace_json_path, std::ios::app);
    LPCE_CHECK_MSG(trace_out.good(), "cannot open --trace_json file");
  }
  std::ofstream metrics_out;
  if (!g_metrics_json_path.empty()) {
    metrics_out.open(g_metrics_json_path, std::ios::app);
    LPCE_CHECK_MSG(metrics_out.good(), "cannot open --metrics_json file");
  }
  // Snapshot-diff instead of ResetAll: the registry is process-global and
  // other entries' runs accumulate into the same instruments.
  const common::MetricsSnapshot before =
      metrics_out.is_open() ? common::MetricsRegistry::Global().Snapshot()
                            : common::MetricsSnapshot{};
  for (const auto& labeled : queries) {
    eng::RunStats stats = engine.RunQuery(labeled.query, entry.estimator.get(),
                                          entry.refiner.get(), config);
    LPCE_CHECK_MSG(stats.result_count == labeled.FinalCard(),
                   "end-to-end result mismatch");
    if (trace_out.is_open()) {
      trace_out << stats.trace->ToJson(eng::TraceJsonMode::kFull) << "\n";
    }
    out.push_back(std::move(stats));
  }
  if (metrics_out.is_open()) {
    const common::MetricsSnapshot delta =
        common::Delta(before, common::MetricsRegistry::Global().Snapshot());
    metrics_out << "{\"entry\":\"" << entry.name
                << "\",\"queries\":" << queries.size()
                << ",\"delta\":" << delta.ToJson() << "}\n";
  }
  return out;
}

double Percentile(std::vector<double> values, double pct) {
  LPCE_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace lpce::bench
