// Paper Table 3: q-error percentiles of the progressive model variants
// (LPCE-R, LPCE-R-Single, LPCE-R-Two) on the remaining operators after
// 4 / 8 / 12 executed operators, on Join-eight queries.
//
// Expected shape: LPCE-R < LPCE-R-Two < LPCE-R-Single (Single suffers the
// train/inference mismatch of feeding its own estimates; Two lacks the
// content module).
#include <cstdio>

#include "bench_world.h"
#include "exec/executor.h"
#include "lpce/estimators.h"

namespace lpce::bench {
namespace {

void RunVariant(const World& world, const char* name, const model::LpceR* variant) {
  model::LpceREstimator estimator(variant, world.database.get());
  const auto& queries = world.test_by_joins.at(8);
  for (int k : {4, 8, 12}) {
    std::vector<double> qerrors;
    for (const auto& labeled : queries) {
      auto logical =
          qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
      std::vector<const qry::LogicalNode*> nodes;
      qry::PostOrder(logical.get(), &nodes);
      if (k >= static_cast<int>(nodes.size())) continue;
      estimator.ResetObservations();
      for (int i = 0; i < k; ++i) {
        estimator.ObserveActual(
            labeled.query, nodes[i]->rels,
            static_cast<double>(labeled.true_cards.at(nodes[i]->rels)));
      }
      for (size_t i = k; i < nodes.size(); ++i) {
        const double est =
            estimator.EstimateSubset(labeled.query, nodes[i]->rels);
        qerrors.push_back(exec::QError(
            est, static_cast<double>(labeled.true_cards.at(nodes[i]->rels))));
      }
    }
    if (qerrors.empty()) continue;
    double mean = 0.0;
    for (double q : qerrors) mean += q;
    mean /= static_cast<double>(qerrors.size());
    std::printf("%-14s %8d %10.2f %10.2f %10.2f %10.2f %10.2f\n", name, k,
                Percentile(qerrors, 50), Percentile(qerrors, 75),
                Percentile(qerrors, 95), Percentile(qerrors, 99), mean);
  }
}

}  // namespace
}  // namespace lpce::bench

int main() {
  const auto& world = lpce::bench::GetWorld();
  std::printf("\n=== Table 3: progressive-model design ablation (Join-eight)"
              " ===\n");
  std::printf("%-14s %8s %10s %10s %10s %10s %10s\n", "variant", "executed",
              "50th", "75th", "95th", "99th", "mean");
  lpce::bench::RunVariant(world, "LPCE-R", world.lpce_r.get());
  lpce::bench::RunVariant(world, "LPCE-R-Single", world.lpce_r_single.get());
  lpce::bench::RunVariant(world, "LPCE-R-Two", world.lpce_r_two.get());
  std::printf("\n(paper: LPCE-R best everywhere; -Single worst due to the"
              " estimated-cardinality input mismatch)\n");
  return 0;
}
