// Shared world for all bench binaries: the synthetic database, labeled
// train/test workloads, and every trained model. Built once and cached on
// disk (directory from LPCE_CACHE_DIR, default ./lpce_cache_v1) so each
// bench binary starts fast; delete the directory to force a rebuild.
//
// Environment knobs:
//   LPCE_SCALE          dataset scale factor        (default 1.0)
//   LPCE_TRAIN_QUERIES  training workload size      (default 800)
//   LPCE_TEST_QUERIES   queries per test join-count (default 40)
//   LPCE_CACHE_DIR      cache directory             (default ./lpce_cache_v1)
//   LPCE_NUM_THREADS    worker pool size for exec + training matmuls
//                       (default: hardware concurrency)
#ifndef LPCE_BENCH_BENCH_WORLD_H_
#define LPCE_BENCH_BENCH_WORLD_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "card/histogram_estimator.h"
#include "card/mscn.h"
#include "card/sampling.h"
#include "engine/engine.h"
#include "lpce/estimators.h"
#include "lpce/lpce_r.h"
#include "workload/workload.h"

namespace lpce::bench {

struct WorldOptions {
  double scale = 1.0;
  int train_queries = 800;
  int test_queries = 40;
  uint64_t seed = 42;
  std::string cache_dir = "lpce_cache_v1";
  /// Pool size for parallel execution and training (0 = hardware
  /// concurrency). Results are identical at every setting.
  int num_threads = 0;

  static WorldOptions FromEnv();
};

/// Everything the paper's experiments need, trained and ready.
struct World {
  WorldOptions options;
  std::unique_ptr<db::Database> database;
  stats::DatabaseStats stats;
  std::unique_ptr<model::FeatureEncoder> encoder;

  std::vector<wk::LabeledQuery> train;
  /// Test workloads keyed by join count (2..8); Join-six/-eight/-three of
  /// the paper are test_by_joins.at(6/8/3).
  std::map<int, std::vector<wk::LabeledQuery>> test_by_joins;
  double log_max_card = 20.0;

  // Tree models (Sec. 7.3 naming):
  std::unique_ptr<model::TreeModel> lpce_s;  // SRU, large (the teacher)
  std::unique_ptr<model::TreeModel> lpce_t;  // LSTM, large, node-wise
  std::unique_ptr<model::TreeModel> lpce_c;  // SRU, small, direct training
  std::unique_ptr<model::TreeModel> lpce_i;  // SRU, small, distilled (LPCE-I)
  std::unique_ptr<model::TreeModel> lpce_q;  // SRU, large, query-wise loss
  std::unique_ptr<model::TreeModel> tlstm;   // LSTM, large, query-wise (TLSTM)

  std::unique_ptr<card::MscnModel> mscn;
  std::unique_ptr<card::MscnModel> flowloss;
  std::unique_ptr<card::MscnModel> hybrid_correction;  // UAE* correction net

  std::unique_ptr<model::LpceR> lpce_r;
  std::unique_ptr<model::LpceR> lpce_r_single;
  std::unique_ptr<model::LpceR> lpce_r_two;

  /// Telemetry of every tree-model/LPCE-R training run keyed by model tag
  /// (lpce_s, lpce_i, ...). Empty when the models came from the disk cache —
  /// nothing was trained in this process. Thread-safe (TrainStatsCache):
  /// serving workers may read while a late (re)training records.
  model::TrainStatsCache train_stats;

  /// Walk budgets of the sampling stand-ins (DeepDB*/NeuroCard*/FLAT*/UAE*).
  /// Larger budgets = more accurate and slower, mirroring each baseline's
  /// accuracy/latency profile in the paper's Table 1.
  int deepdb_walks = 8000;
  int neurocard_walks = 3000;
  int flat_walks = 1000;
  int uae_walks = 300;

  model::TreeModelConfig StudentConfig() const;
  model::TreeModelConfig TeacherConfig(bool lstm = false) const;
};

/// Builds (or loads from cache) the singleton world. Construction is
/// thread-safe (magic static); the returned snapshot is immutable afterwards
/// — serving-layer workers share it read-only (train_stats, the one member
/// with a mutation path, is internally synchronized).
const World& GetWorld();

/// One named estimator, optionally with a refiner for re-optimization runs.
struct EstimatorEntry {
  std::string name;
  std::unique_ptr<card::CardinalityEstimator> estimator;
  std::unique_ptr<card::CardinalityEstimator> refiner;  // LPCE-R only
  bool enable_reopt = false;
  /// Engine configuration for this entry's runs. The LPCE-R entry uses the
  /// refined trigger policy (underestimates-only with a size floor, no
  /// restart) — our implementation of the trigger-policy future work the
  /// paper's Sec. 6.2/8 calls for; at millisecond executions the paper's
  /// plain q-error>=50 rule fires on inconsequential nodes and its
  /// re-planning overhead is no longer negligible. bench_ablation_trigger
  /// quantifies the difference.
  eng::RunConfig run_config;
};

/// The paper's baseline lineup (Table 1/2 rows, in paper order):
/// PostgreSQL, DeepDB*, NeuroCard*, FLAT*, UAE*, MSCN, Flow-Loss, TLSTM,
/// LPCE-I, LPCE-R. Asterisks mark documented stand-ins (DESIGN.md).
std::vector<EstimatorEntry> MakeEstimatorLineup(const World& world);

/// Mean/percentile helpers shared by the bench printers.
double Percentile(std::vector<double> values, double pct);

/// Parses the bench command line. Call first thing in main(). Flags:
///   --trace_json=PATH    append every RunWorkload query's full trace JSON
///                        (engine/trace.h, kFull mode) as one line to PATH.
///   --metrics_json=PATH  append one JSON line per RunWorkload call holding
///                        the entry name and the metrics-registry delta
///                        (common/metrics.h Snapshot/Delta) over the run.
/// Unknown flags print usage and exit(2).
void ParseBenchFlags(int argc, char** argv);

/// Path given via --metrics_json (empty when the flag is absent). Benches
/// that don't route through RunWorkload append their own summary JSON lines
/// to this file.
const std::string& MetricsJsonPath();

/// Runs every query of a workload end-to-end with the entry's estimator
/// (+ refiner / re-optimization when the entry enables it), verifying result
/// counts against the labels. Returns one RunStats per query. With
/// --trace_json, each query's trace is appended to the flag's file; with
/// --metrics_json, the run's metric delta is appended to that file.
std::vector<eng::RunStats> RunWorkload(const World& world,
                                       const EstimatorEntry& entry,
                                       const std::vector<wk::LabeledQuery>& queries);

}  // namespace lpce::bench

#endif  // LPCE_BENCH_BENCH_WORLD_H_
