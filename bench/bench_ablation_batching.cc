// Ablation of the Sec. 6.1 batched inference: the paper notes that LPCE-I
// inferences for all sub-queries are "conducted in a batch" during plan
// enumeration. Our implementation shares the recurrent state of each
// subset's canonical-chain prefix, costing one cell step per connected
// subset instead of one full tree per subset. This bench measures the
// per-query planning-inference time with and without the batched prepare.
#include <cstdio>

#include "bench_world.h"
#include "common/timer.h"

namespace lpce::bench {
namespace {

void Run() {
  const World& world = GetWorld();
  model::TreeModelEstimator estimator("LPCE-I", world.lpce_i.get(),
                                      world.database.get());
  std::printf("\n=== Batched sub-plan inference (Sec. 6.1) ===\n");
  std::printf("%8s %10s %16s %16s %9s\n", "joins", "subsets", "lazy (ms/query)",
              "batched (ms/qry)", "speedup");
  for (int joins : {3, 6, 8}) {
    const auto& queries = world.test_by_joins.at(joins);
    double lazy_seconds = 0.0, batched_seconds = 0.0;
    size_t subsets = 0;
    for (const auto& labeled : queries) {
      // Count and enumerate the connected subsets once.
      std::vector<qry::RelSet> connected;
      for (qry::RelSet rels = 1; rels <= labeled.query.AllRels(); ++rels) {
        if (labeled.query.IsConnected(rels)) connected.push_back(rels);
      }
      subsets += connected.size();
      {
        // Lazy: one canonical-tree inference per subset (no prepare).
        model::TreeModelEstimator lazy("lazy", world.lpce_i.get(),
                                       world.database.get());
        WallTimer timer;
        for (qry::RelSet rels : connected) {
          lazy.EstimateSubset(labeled.query, rels);
        }
        lazy_seconds += timer.ElapsedSeconds();
      }
      {
        WallTimer timer;
        estimator.PrepareQuery(labeled.query);
        for (qry::RelSet rels : connected) {
          estimator.EstimateSubset(labeled.query, rels);
        }
        batched_seconds += timer.ElapsedSeconds();
      }
    }
    std::printf("%8d %10.1f %16.3f %16.3f %8.2fx\n", joins,
                static_cast<double>(subsets) / queries.size(),
                lazy_seconds / queries.size() * 1e3,
                batched_seconds / queries.size() * 1e3,
                lazy_seconds / batched_seconds);
  }
  std::printf("\n(one cell step per subset instead of one |S|-node tree per"
              " subset: the win grows with join count)\n");
}

}  // namespace
}  // namespace lpce::bench

int main() {
  lpce::bench::Run();
  return 0;
}
