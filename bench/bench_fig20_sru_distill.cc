// Paper Figure 20: effect of the SRU cell and knowledge distillation on
// accuracy. LPCE-T (LSTM large) vs LPCE-S (SRU large): near-equal accuracy.
// LPCE-C (small, direct) vs LPCE-I (small, distilled): distillation recovers
// the accuracy the small model loses.
#include <cstdio>

#include "bench_world.h"
#include "exec/executor.h"

namespace lpce::bench {
namespace {

void RunSet(const World& world, int joins) {
  struct Variant {
    const char* name;
    const model::TreeModel* tree_model;
  };
  const Variant variants[] = {
      {"LPCE-T", world.lpce_t.get()},
      {"LPCE-S", world.lpce_s.get()},
      {"LPCE-C", world.lpce_c.get()},
      {"LPCE-I", world.lpce_i.get()},
  };
  std::printf("\n--- Join-%s ---\n", joins == 6 ? "six" : "eight");
  std::printf("%-8s %10s %10s %10s %10s %12s\n", "model", "p25", "median",
              "p75", "p95", "mean");
  for (const auto& variant : variants) {
    model::TreeModelEstimator estimator(variant.name, variant.tree_model,
                                        world.database.get());
    std::vector<double> qerrors;
    for (const auto& labeled : world.test_by_joins.at(joins)) {
      const double est =
          estimator.EstimateSubset(labeled.query, labeled.query.AllRels());
      qerrors.push_back(
          exec::QError(est, static_cast<double>(labeled.FinalCard())));
    }
    double mean = 0.0;
    for (double q : qerrors) mean += q;
    mean /= static_cast<double>(qerrors.size());
    std::printf("%-8s %10.2f %10.2f %10.2f %10.2f %12.2f\n", variant.name,
                Percentile(qerrors, 25), Percentile(qerrors, 50),
                Percentile(qerrors, 75), Percentile(qerrors, 95), mean);
  }
}

}  // namespace
}  // namespace lpce::bench

int main() {
  const auto& world = lpce::bench::GetWorld();
  std::printf("\n=== Figure 20: SRU + distillation accuracy ablation ===\n");
  lpce::bench::RunSet(world, 6);
  lpce::bench::RunSet(world, 8);
  std::printf("\n(paper: LPCE-T ~= LPCE-S; LPCE-C clearly worse; LPCE-I"
              " recovers LPCE-S accuracy at the small size)\n");
  return 0;
}
