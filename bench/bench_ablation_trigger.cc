// Ablation (the future work flagged in paper Sec. 6.2/8): when should a
// checkpoint trigger re-optimization? We compare, on the queries each policy
// actually re-optimizes, the end-to-end time against running the same
// queries with LPCE-I and no re-optimization:
//   - the paper's rule (q-error >= 50 at any checkpoint, restart considered);
//   - the same without the restart option;
//   - underestimates-only with a minimum-rows floor (the policy the bench
//     lineup uses) — at millisecond executions, overestimates and tiny
//     intermediates are not worth the re-planning cost.
#include <cstdio>

#include "bench_world.h"

namespace lpce::bench {
namespace {

struct Policy {
  const char* name;
  eng::RunConfig config;
};

void Run() {
  const World& world = GetWorld();
  auto lineup = MakeEstimatorLineup(world);
  const EstimatorEntry* lpce_i = nullptr;
  const EstimatorEntry* lpce_r = nullptr;
  for (const auto& entry : lineup) {
    if (entry.name == "LPCE-I") lpce_i = &entry;
    if (entry.name == "LPCE-R") lpce_r = &entry;
  }
  eng::Engine engine(world.database.get(), opt::CostModel{});

  std::vector<Policy> policies;
  {
    eng::RunConfig c;
    c.enable_reopt = true;
    policies.push_back({"paper: q>=50, restart", c});
  }
  {
    eng::RunConfig c;
    c.enable_reopt = true;
    c.consider_restart = false;
    policies.push_back({"q>=50, no restart", c});
  }
  {
    eng::RunConfig c;
    c.enable_reopt = true;
    c.underestimates_only = true;
    c.min_trip_rows = 2000;
    c.consider_restart = false;
    policies.push_back({"underest, >=2k rows", c});
  }
  {
    eng::RunConfig c;
    c.enable_reopt = true;
    c.qerror_threshold = 10.0;
    c.underestimates_only = true;
    c.min_trip_rows = 2000;
    c.consider_restart = false;
    policies.push_back({"underest q>=10, >=2k", c});
  }

  std::printf("\n=== Trigger-policy ablation (Sec. 6.2 future work) ===\n");
  for (int joins : {6, 8}) {
    const auto& queries = world.test_by_joins.at(joins);
    // LPCE-I baseline (no re-optimization).
    std::vector<double> base(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      base[i] = engine
                    .RunQuery(queries[i].query, lpce_i->estimator.get(), nullptr,
                              {})
                    .TotalSeconds();
    }
    std::printf("\n--- Join-%s ---\n", joins == 6 ? "six" : "eight");
    std::printf("%-22s %8s %8s %14s %14s %9s\n", "policy", "queries", "reopts",
                "LPCE-I (s)", "LPCE-R (s)", "speedup");
    for (const auto& policy : policies) {
      double base_total = 0.0, reopt_total = 0.0;
      int triggered = 0, reopts = 0;
      for (size_t i = 0; i < queries.size(); ++i) {
        eng::RunStats stats =
            engine.RunQuery(queries[i].query, lpce_r->estimator.get(),
                            lpce_r->refiner.get(), policy.config);
        if (stats.num_reopts == 0) continue;
        ++triggered;
        reopts += stats.num_reopts;
        base_total += base[i];
        reopt_total += stats.TotalSeconds();
      }
      std::printf("%-22s %8d %8d %14.3f %14.3f %8.2fx\n", policy.name, triggered,
                  reopts, base_total, reopt_total,
                  reopt_total > 0 ? base_total / reopt_total : 0.0);
    }
  }
  std::printf("\n(expected: the plain threshold fires on harmless nodes and"
              " roughly breaks even; gating on consequential underestimates"
              " recovers a clear net win on the triggered queries)\n");
}

}  // namespace
}  // namespace lpce::bench

int main() {
  lpce::bench::Run();
  return 0;
}
