// Paper Figure 21: node-wise vs query-wise loss. LPCE-Q shares the backbone
// (SRU, large) but trains only on each query's final result (Eq. 2); the
// node-wise loss (Eq. 3) supervises every plan node.
//
// Expected shape: node-wise is markedly more accurate, both at the final
// result and (especially) across internal plan nodes.
#include <cstdio>

#include "bench_world.h"
#include "exec/executor.h"

namespace lpce::bench {
namespace {

void RunSet(const World& world, int joins) {
  struct Variant {
    const char* name;
    const model::TreeModel* tree_model;
  };
  const Variant variants[] = {
      {"LPCE-Q", world.lpce_q.get()},  // query-wise loss, same backbone
      {"LPCE-S", world.lpce_s.get()},  // node-wise loss, same backbone
      {"LPCE-I", world.lpce_i.get()},  // node-wise + distilled (deployed)
  };
  std::printf("\n--- Join-%s ---\n", joins == 6 ? "six" : "eight");
  std::printf("%-8s %14s %14s %16s\n", "model", "root median q", "root mean q",
              "all-nodes mean q");
  for (const auto& variant : variants) {
    std::vector<double> root_q;
    double node_total = 0.0;
    int node_count = 0;
    for (const auto& labeled : world.test_by_joins.at(joins)) {
      auto logical =
          qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
      auto tree = model::MakeEstTree(labeled.query, logical.get(),
                                     *world.database, &labeled.true_cards);
      auto outputs = variant.tree_model->Forward(labeled.query, tree.get());
      for (const auto& out : outputs) {
        if (out.node->true_card < 0) continue;
        const double est = variant.tree_model->YToCard(
            static_cast<double>(out.y->value().at(0, 0)));
        const double q = exec::QError(est, out.node->true_card);
        node_total += q;
        ++node_count;
        if (out.node->rels == labeled.query.AllRels()) root_q.push_back(q);
      }
    }
    double root_mean = 0.0;
    for (double q : root_q) root_mean += q;
    root_mean /= static_cast<double>(root_q.size());
    std::printf("%-8s %14.2f %14.2f %16.2f\n", variant.name,
                Percentile(root_q, 50), root_mean, node_total / node_count);
  }
}

}  // namespace
}  // namespace lpce::bench

int main() {
  const auto& world = lpce::bench::GetWorld();
  std::printf("\n=== Figure 21: node-wise vs query-wise loss ===\n");
  lpce::bench::RunSet(world, 6);
  lpce::bench::RunSet(world, 8);
  std::printf("\n(paper: node-wise loss significantly more accurate — data"
              " augmentation from sub-plans + direct supervision of internal"
              " nodes)\n");
  return 0;
}
