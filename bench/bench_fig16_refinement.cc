// Paper Figure 16: how LPCE-R's mean q-error over the *remaining* operators
// falls as more operators finish executing. For each test query we feed the
// true cardinalities of the first k post-order operators of the canonical
// plan into LPCE-R, then measure its error on the not-yet-executed nodes.
//
// Expected shape: monotone-ish decrease (paper: 33.5 -> 22.7 -> 17.4 -> 10.3
// on Join-six at 3/6/9/12 executed operators).
#include <cstdio>

#include "bench_world.h"
#include "exec/executor.h"
#include "lpce/estimators.h"

namespace lpce::bench {
namespace {

void RunSet(const World& world, int joins, const std::vector<int>& prefixes) {
  const auto& queries = world.test_by_joins.at(joins);
  model::LpceREstimator estimator(world.lpce_r.get(), world.database.get());
  model::TreeModelEstimator baseline("LPCE-I", world.lpce_i.get(),
                                     world.database.get());

  std::printf("\n--- Join-%s (plans have %d operators) ---\n",
              joins == 6 ? "six" : "eight", 2 * (joins + 1) - 1);
  std::printf("%-20s %14s %14s %14s %14s\n", "executed operators",
              "LPCE-R mean q", "LPCE-R median", "LPCE-I mean q",
              "LPCE-I median");
  for (int k : prefixes) {
    // q-errors of the refined model and of the unrefined initial model on
    // the SAME remaining-node population (the remaining nodes get harder as
    // k grows, so the paired comparison is the meaningful one).
    std::vector<double> refined, unrefined;
    for (const auto& labeled : queries) {
      auto logical =
          qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
      std::vector<const qry::LogicalNode*> nodes;
      qry::PostOrder(logical.get(), &nodes);
      if (k >= static_cast<int>(nodes.size())) continue;
      estimator.ResetObservations();
      // Execute the first k operators "for free" using the labels (any
      // post-order prefix is a forest of completed subtrees).
      for (int i = 0; i < k; ++i) {
        estimator.ObserveActual(
            labeled.query, nodes[i]->rels,
            static_cast<double>(labeled.true_cards.at(nodes[i]->rels)));
      }
      for (size_t i = k; i < nodes.size(); ++i) {
        const double truth =
            static_cast<double>(labeled.true_cards.at(nodes[i]->rels));
        refined.push_back(exec::QError(
            estimator.EstimateSubset(labeled.query, nodes[i]->rels), truth));
        unrefined.push_back(exec::QError(
            baseline.EstimateSubset(labeled.query, nodes[i]->rels), truth));
      }
    }
    if (refined.empty()) continue;
    double mean_r = 0.0, mean_u = 0.0;
    for (double q : refined) mean_r += q;
    for (double q : unrefined) mean_u += q;
    mean_r /= static_cast<double>(refined.size());
    mean_u /= static_cast<double>(unrefined.size());
    std::printf("%-20d %14.2f %14.2f %14.2f %14.2f\n", k, mean_r,
                Percentile(refined, 50), mean_u, Percentile(unrefined, 50));
  }
}

}  // namespace
}  // namespace lpce::bench

int main() {
  const auto& world = lpce::bench::GetWorld();
  std::printf("\n=== Figure 16: LPCE-R error vs executed operators ===\n");
  lpce::bench::RunSet(world, 6, {0, 3, 6, 9, 12});
  lpce::bench::RunSet(world, 8, {0, 4, 8, 12, 16});
  std::printf("\n(paper: mean q-error falls monotonically as operators"
              " finish: 33.5 -> 10.3 on Join-six)\n");
  return 0;
}
