// Serving-throughput bench: closed-loop clients driving the EngineServer
// (engine/server.h) at a sweep of worker counts. Reports QPS and p50/p95/p99
// end-to-end latency per worker count plus the speedup over 1 worker, and
// verifies every served row count against the workload labels.
//
// Latency percentiles come from the shared log-bucket histogram
// (common/telemetry.h LogHistogram) — bounded memory no matter how long the
// closed loop runs; --check_percentiles=1 additionally stores raw samples
// and prints the exact sort-based percentiles next to the histogram ones
// (the agreement record in EXPERIMENTS.md). With telemetry on, per-phase
// (T_P/T_I/T_R/T_E) p50s sourced from the telemetry windows are appended to
// each row.
//
// Self-contained like bench_parallel_scaling: builds its own synthetic
// database (no GetWorld / no training), so it runs in seconds.
//
// Flags:
//   --workers=1,2,4       worker counts to sweep
//   --clients=N           closed-loop clients (0 = 2x workers, min 4)
//   --queries=N           workload size (default 300)
//   --scale=F             synthetic database scale (default 0.2)
//   --reopt=0|1           run queries with re-optimization on (default 1)
//   --telemetry=-1|0|1    -1 = follow LPCE_TELEMETRY (default), 0/1 = force
//   --check_percentiles=1 also compute exact sort-based percentiles
//   --overhead_gate=PCT   run the first worker count telemetry-off vs -on
//                         (best of --gate_repeats each) and exit 1 when the
//                         QPS overhead exceeds PCT percent
//   --gate_repeats=N      off/on pairs of the overhead gate (default 5)
//   --trace_json=PATH     append every query's full trace JSON line to PATH
//   --metrics_json=PATH   append one summary JSON line per worker count
//                         (QPS, latency percentiles, lpce.serve.* delta)
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_world.h"
#include "card/histogram_estimator.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "engine/server.h"
#include "engine/trace.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace lpce::bench {
namespace {

struct Flags {
  std::vector<int> workers = {1, 2, 4};
  int clients = 0;  // 0 = max(4, 2 * workers)
  int queries = 300;
  double scale = 0.2;
  bool reopt = true;
  int telemetry = -1;  // -1 = follow env
  bool check_percentiles = false;
  double overhead_gate = 0.0;  // percent; 0 = no gate
  int gate_repeats = 5;
  std::string trace_json;
  std::string metrics_json;
};

std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string item = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const int value = std::atoi(item.c_str());
    if (value > 0) out.push_back(value);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--workers=")) {
      flags.workers = ParseIntList(v);
    } else if (const char* v = value_of("--clients=")) {
      flags.clients = std::atoi(v);
    } else if (const char* v = value_of("--queries=")) {
      flags.queries = std::atoi(v);
    } else if (const char* v = value_of("--scale=")) {
      flags.scale = std::atof(v);
    } else if (const char* v = value_of("--reopt=")) {
      flags.reopt = std::atoi(v) != 0;
    } else if (const char* v = value_of("--telemetry=")) {
      flags.telemetry = std::atoi(v);
    } else if (const char* v = value_of("--check_percentiles=")) {
      flags.check_percentiles = std::atoi(v) != 0;
    } else if (const char* v = value_of("--overhead_gate=")) {
      flags.overhead_gate = std::atof(v);
    } else if (const char* v = value_of("--gate_repeats=")) {
      flags.gate_repeats = std::max(1, std::atoi(v));
    } else if (const char* v = value_of("--trace_json=")) {
      flags.trace_json = v;
    } else if (const char* v = value_of("--metrics_json=")) {
      flags.metrics_json = v;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--workers=1,2,4] "
                   "[--clients=N] [--queries=N] [--scale=F] [--reopt=0|1] "
                   "[--telemetry=-1|0|1] [--check_percentiles=1] "
                   "[--overhead_gate=PCT] [--gate_repeats=N] "
                   "[--trace_json=PATH] [--metrics_json=PATH]\n",
                   arg.c_str(), argv[0]);
      std::exit(2);
    }
  }
  if (flags.workers.empty() || flags.queries <= 0) {
    std::fprintf(stderr, "need at least one worker count and one query\n");
    std::exit(2);
  }
  return flags;
}

struct SweepResult {
  int workers = 0;
  int clients = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  // Exact sort-based percentiles (--check_percentiles=1 only).
  double exact_p50_ms = 0.0, exact_p95_ms = 0.0, exact_p99_ms = 0.0;
  // Per-phase p50 from the telemetry windows (telemetry on only), ms.
  bool has_phases = false;
  double phase_p50_ms[4] = {0, 0, 0, 0};
  // p50 peak intermediate bytes per query from the telemetry windows.
  uint64_t peak_bytes_p50 = 0;
  uint64_t telemetry_published = 0;
  uint64_t telemetry_dropped = 0;
  uint64_t mismatches = 0;
};

/// Histogram quantile in milliseconds; observations are microseconds.
double HistPctMs(const common::LogHistogram& hist, double q) {
  return static_cast<double>(hist.ValueAtQuantile(q)) / 1e3;
}

/// One closed-loop run: `clients` threads each submit a query, wait for its
/// result, then claim the next one, until the workload is drained.
/// `reset_hub=false` keeps the telemetry hub's template windows across runs
/// (the overhead gate measures steady state, not template cold-start).
SweepResult RunSweep(const db::Database& database,
                     const stats::DatabaseStats& stats,
                     const std::vector<wk::LabeledQuery>& workload, int workers,
                     const Flags& flags, std::ofstream* trace_out,
                     bool reset_hub = true) {
  SweepResult result;
  result.workers = workers;
  result.clients =
      flags.clients > 0 ? flags.clients : std::max(4, 2 * workers);

  const bool telemetry_on = common::TelemetryEnabled();
  if (telemetry_on && reset_hub) {
    // Fresh windows per sweep so each row's phase columns cover exactly its
    // own queries.
    common::TelemetryHub::Global().Configure(common::TelemetryOptions::FromEnv());
  }

  eng::ServerOptions options;
  options.num_workers = workers;
  options.max_queue = workload.size();
  options.run_config.enable_reopt = flags.reopt;
  eng::EngineServer server(
      &database, opt::CostModel{},
      [&stats](int worker_id) {
        (void)worker_id;
        eng::EngineServer::Session session;
        session.initial = std::make_unique<card::HistogramEstimator>(&stats);
        return session;
      },
      options);

  std::atomic<size_t> next{0};
  std::atomic<uint64_t> mismatches{0};
  // Per-client histograms (LogHistogram is not thread-safe), merged after
  // the join — memory stays bounded however long the loop runs.
  std::vector<common::LogHistogram> latencies(
      static_cast<size_t>(result.clients));
  std::vector<std::vector<double>> samples(
      flags.check_percentiles ? static_cast<size_t>(result.clients) : 0);
  std::mutex trace_mu;
  WallTimer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < result.clients; ++c) {
    clients.emplace_back([&, c] {
      for (;;) {
        const size_t pick = next.fetch_add(1);
        if (pick >= workload.size()) return;
        WallTimer latency;
        Result<eng::RunStats> run = server.RunSync(workload[pick].query);
        if (!run.ok() ||
            run.value().result_count != workload[pick].FinalCard()) {
          mismatches.fetch_add(1);
          continue;
        }
        const double seconds = latency.ElapsedSeconds();
        latencies[static_cast<size_t>(c)].Observe(
            seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e6));
        if (flags.check_percentiles) {
          samples[static_cast<size_t>(c)].push_back(seconds * 1e3);
        }
        if (trace_out != nullptr && trace_out->is_open()) {
          const std::string line =
              run.value().trace->ToJson(eng::TraceJsonMode::kFull);
          std::lock_guard<std::mutex> lock(trace_mu);
          *trace_out << line << "\n";
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  result.wall_seconds = wall.ElapsedSeconds();
  server.Shutdown();

  common::LogHistogram all;
  for (const auto& per_client : latencies) all.Merge(per_client);
  result.mismatches = mismatches.load();
  if (all.count() > 0) {
    result.qps = static_cast<double>(all.count()) / result.wall_seconds;
    result.p50_ms = HistPctMs(all, 0.50);
    result.p95_ms = HistPctMs(all, 0.95);
    result.p99_ms = HistPctMs(all, 0.99);
  }
  if (flags.check_percentiles) {
    std::vector<double> flat;
    for (const auto& per_client : samples) {
      flat.insert(flat.end(), per_client.begin(), per_client.end());
    }
    if (!flat.empty()) {
      result.exact_p50_ms = Percentile(flat, 50.0);
      result.exact_p95_ms = Percentile(flat, 95.0);
      result.exact_p99_ms = Percentile(flat, 99.0);
    }
  }

  if (telemetry_on) {
    auto& hub = common::TelemetryHub::Global();
    hub.DrainNow();
    const common::TelemetrySnapshot snapshot = hub.Snapshot();
    common::WindowStats merged;
    for (const auto& t : snapshot.templates) {
      for (int phase = 0; phase < 4; ++phase) {
        merged.phases[phase].Merge(t.lifetime.phases[phase]);
      }
      merged.peak_bytes.Merge(t.lifetime.peak_bytes);
    }
    result.has_phases = merged.phases[0].count() > 0;
    for (int phase = 0; phase < 4; ++phase) {
      result.phase_p50_ms[phase] =
          static_cast<double>(merged.phases[phase].ValueAtQuantile(0.50)) / 1e6;
    }
    result.peak_bytes_p50 = merged.peak_bytes.ValueAtQuantile(0.50);
    result.telemetry_published = snapshot.published;
    result.telemetry_dropped = snapshot.dropped;
  }
  return result;
}

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  common::SetGlobalPoolSize(1);  // cross-query concurrency is the subject
  if (flags.telemetry >= 0) {
    common::SetTelemetryEnabled(flags.telemetry != 0);
  }

  db::SynthImdbOptions opts;
  opts.scale = flags.scale;
  auto database = db::BuildSynthImdb(opts);
  stats::DatabaseStats stats;
  stats.Build(*database);
  wk::GeneratorOptions gen;
  gen.seed = 404;
  wk::QueryGenerator generator(database.get(), gen);
  const auto workload = generator.GenerateLabeled(flags.queries, 2, 5);

  std::ofstream trace_out;
  if (!flags.trace_json.empty()) {
    trace_out.open(flags.trace_json, std::ios::app);
  }
  std::ofstream metrics_out;
  if (!flags.metrics_json.empty()) {
    metrics_out.open(flags.metrics_json, std::ios::app);
  }

  // ---- Telemetry overhead gate (CI perf-smoke) ----------------------------
  // The gate must trip on real per-query publish cost, not scheduler
  // jitter. Paired design: each repeat measures off and on back to back so
  // slow drift in machine load cancels within the pair, and the median of
  // the per-pair ratios sheds the occasional repeat that landed on a bad
  // patch of a shared runner (an unpaired best-of-N was still ~5% noisy on
  // CI-class machines). Steady state: the hub keeps its template windows
  // across repeats, so template cold-start is paid once in the warm-up.
  if (flags.overhead_gate > 0.0) {
    const int workers = flags.workers.front();
    common::TelemetryHub::Global().Configure(
        common::TelemetryOptions::FromEnv());
    auto one_qps = [&](bool telemetry) {
      common::SetTelemetryEnabled(telemetry);
      return RunSweep(*database, stats, workload, workers, flags, nullptr,
                      /*reset_hub=*/false)
          .qps;
    };
    one_qps(false);  // warm-up: page in the tables and the code
    one_qps(true);   // warm-up: populate the telemetry template windows
    std::vector<double> ratios;  // on/off per pair
    double off_qps = 0.0, on_qps = 0.0;
    for (int r = 0; r < flags.gate_repeats; ++r) {
      const double off = one_qps(false);
      const double on = one_qps(true);
      if (off > 0.0) ratios.push_back(on / off);
      off_qps = std::max(off_qps, off);
      on_qps = std::max(on_qps, on);
    }
    std::sort(ratios.begin(), ratios.end());
    const double median_ratio =
        ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
    const double overhead_pct = (1.0 - median_ratio) * 100.0;
    std::printf(
        "overhead gate: workers=%d best_off_qps=%.1f best_on_qps=%.1f "
        "median_pair_overhead=%.2f%% (limit %.2f%%)\n",
        workers, off_qps, on_qps, overhead_pct, flags.overhead_gate);
    if (overhead_pct > flags.overhead_gate) {
      std::printf("!! telemetry overhead above gate\n");
      return 1;
    }
    return 0;
  }

  const bool telemetry_cols =
      flags.telemetry > 0 ||
      (flags.telemetry < 0 && common::TelemetryEnabled());
  std::printf("%8s %8s %10s %10s %10s %10s %10s %9s", "workers", "clients",
              "wall(s)", "qps", "p50(ms)", "p95(ms)", "p99(ms)", "speedup");
  if (telemetry_cols) {
    std::printf(" %9s %9s %9s %9s %10s %6s", "plan50", "infer50", "reopt50",
                "exec50", "peakB50", "drops");
  }
  std::printf("\n");
  bool ok = true;
  double base_qps = 0.0;
  for (int workers : flags.workers) {
    const common::MetricsSnapshot before =
        common::MetricsRegistry::Global().Snapshot();
    const SweepResult r = RunSweep(*database, stats, workload, workers, flags,
                                   trace_out.is_open() ? &trace_out : nullptr);
    if (base_qps == 0.0) base_qps = r.qps;
    if (r.mismatches > 0) {
      ok = false;
      std::printf("!! %llu result mismatches at %d workers\n",
                  static_cast<unsigned long long>(r.mismatches), workers);
    }
    std::printf("%8d %8d %10.3f %10.1f %10.3f %10.3f %10.3f %8.2fx",
                r.workers, r.clients, r.wall_seconds, r.qps, r.p50_ms,
                r.p95_ms, r.p99_ms, base_qps > 0 ? r.qps / base_qps : 0.0);
    if (telemetry_cols) {
      std::printf(" %9.3f %9.3f %9.3f %9.3f %10llu %6llu", r.phase_p50_ms[0],
                  r.phase_p50_ms[1], r.phase_p50_ms[2], r.phase_p50_ms[3],
                  static_cast<unsigned long long>(r.peak_bytes_p50),
                  static_cast<unsigned long long>(r.telemetry_dropped));
    }
    std::printf("\n");
    if (flags.check_percentiles) {
      std::printf(
          "   exact-sort percentiles: p50=%.3f p95=%.3f p99=%.3f "
          "(histogram rel-err p50=%.1f%% p95=%.1f%% p99=%.1f%%)\n",
          r.exact_p50_ms, r.exact_p95_ms, r.exact_p99_ms,
          r.exact_p50_ms > 0 ? (r.p50_ms / r.exact_p50_ms - 1.0) * 100 : 0.0,
          r.exact_p95_ms > 0 ? (r.p95_ms / r.exact_p95_ms - 1.0) * 100 : 0.0,
          r.exact_p99_ms > 0 ? (r.p99_ms / r.exact_p99_ms - 1.0) * 100 : 0.0);
    }
    if (metrics_out.is_open()) {
      const common::MetricsSnapshot delta =
          common::Delta(before, common::MetricsRegistry::Global().Snapshot());
      char line[768];
      std::snprintf(line, sizeof(line),
                    "{\"bench\":\"serving\",\"workers\":%d,\"clients\":%d,"
                    "\"queries\":%zu,\"wall_seconds\":%.6f,\"qps\":%.3f,"
                    "\"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f,"
                    "\"plan_p50_ms\":%.4f,\"infer_p50_ms\":%.4f,"
                    "\"reopt_p50_ms\":%.4f,\"exec_p50_ms\":%.4f,"
                    "\"peak_bytes_p50\":%llu,"
                    "\"telemetry_published\":%llu,\"telemetry_dropped\":%llu,"
                    "\"speedup_vs_1\":%.4f,\"delta\":",
                    r.workers, r.clients, workload.size(), r.wall_seconds,
                    r.qps, r.p50_ms, r.p95_ms, r.p99_ms, r.phase_p50_ms[0],
                    r.phase_p50_ms[1], r.phase_p50_ms[2], r.phase_p50_ms[3],
                    static_cast<unsigned long long>(r.peak_bytes_p50),
                    static_cast<unsigned long long>(r.telemetry_published),
                    static_cast<unsigned long long>(r.telemetry_dropped),
                    base_qps > 0 ? r.qps / base_qps : 0.0);
      metrics_out << line << delta.ToJson() << "}\n";
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lpce::bench

int main(int argc, char** argv) { return lpce::bench::Run(argc, argv); }
