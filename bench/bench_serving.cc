// Serving-throughput bench: closed-loop clients driving the EngineServer
// (engine/server.h) at a sweep of worker counts. Reports QPS and p50/p95/p99
// end-to-end latency per worker count plus the speedup over 1 worker, and
// verifies every served row count against the workload labels.
//
// Self-contained like bench_parallel_scaling: builds its own synthetic
// database (no GetWorld / no training), so it runs in seconds.
//
// Flags:
//   --workers=1,2,4       worker counts to sweep
//   --clients=N           closed-loop clients (0 = 2x workers, min 4)
//   --queries=N           workload size (default 300)
//   --scale=F             synthetic database scale (default 0.05)
//   --reopt=0|1           run queries with re-optimization on (default 1)
//   --trace_json=PATH     append every query's full trace JSON line to PATH
//   --metrics_json=PATH   append one summary JSON line per worker count
//                         (QPS, latency percentiles, lpce.serve.* delta)
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_world.h"
#include "card/histogram_estimator.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "engine/server.h"
#include "engine/trace.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace lpce::bench {
namespace {

struct Flags {
  std::vector<int> workers = {1, 2, 4};
  int clients = 0;  // 0 = max(4, 2 * workers)
  int queries = 300;
  double scale = 0.05;
  bool reopt = true;
  std::string trace_json;
  std::string metrics_json;
};

std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string item = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const int value = std::atoi(item.c_str());
    if (value > 0) out.push_back(value);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--workers=")) {
      flags.workers = ParseIntList(v);
    } else if (const char* v = value_of("--clients=")) {
      flags.clients = std::atoi(v);
    } else if (const char* v = value_of("--queries=")) {
      flags.queries = std::atoi(v);
    } else if (const char* v = value_of("--scale=")) {
      flags.scale = std::atof(v);
    } else if (const char* v = value_of("--reopt=")) {
      flags.reopt = std::atoi(v) != 0;
    } else if (const char* v = value_of("--trace_json=")) {
      flags.trace_json = v;
    } else if (const char* v = value_of("--metrics_json=")) {
      flags.metrics_json = v;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--workers=1,2,4] "
                   "[--clients=N] [--queries=N] [--scale=F] [--reopt=0|1] "
                   "[--trace_json=PATH] [--metrics_json=PATH]\n",
                   arg.c_str(), argv[0]);
      std::exit(2);
    }
  }
  if (flags.workers.empty() || flags.queries <= 0) {
    std::fprintf(stderr, "need at least one worker count and one query\n");
    std::exit(2);
  }
  return flags;
}

struct SweepResult {
  int workers = 0;
  int clients = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  uint64_t mismatches = 0;
};

/// One closed-loop run: `clients` threads each submit a query, wait for its
/// result, then claim the next one, until the workload is drained.
SweepResult RunSweep(const db::Database& database,
                     const stats::DatabaseStats& stats,
                     const std::vector<wk::LabeledQuery>& workload, int workers,
                     const Flags& flags, std::ofstream* trace_out) {
  SweepResult result;
  result.workers = workers;
  result.clients =
      flags.clients > 0 ? flags.clients : std::max(4, 2 * workers);

  eng::ServerOptions options;
  options.num_workers = workers;
  options.max_queue = workload.size();
  options.run_config.enable_reopt = flags.reopt;
  eng::EngineServer server(
      &database, opt::CostModel{},
      [&stats](int worker_id) {
        (void)worker_id;
        eng::EngineServer::Session session;
        session.initial = std::make_unique<card::HistogramEstimator>(&stats);
        return session;
      },
      options);

  std::atomic<size_t> next{0};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(result.clients));
  std::mutex trace_mu;
  WallTimer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < result.clients; ++c) {
    clients.emplace_back([&, c] {
      for (;;) {
        const size_t pick = next.fetch_add(1);
        if (pick >= workload.size()) return;
        WallTimer latency;
        Result<eng::RunStats> run = server.RunSync(workload[pick].query);
        if (!run.ok() ||
            run.value().result_count != workload[pick].FinalCard()) {
          mismatches.fetch_add(1);
          continue;
        }
        latencies[static_cast<size_t>(c)].push_back(
            latency.ElapsedSeconds() * 1e3);
        if (trace_out != nullptr && trace_out->is_open()) {
          const std::string line =
              run.value().trace->ToJson(eng::TraceJsonMode::kFull);
          std::lock_guard<std::mutex> lock(trace_mu);
          *trace_out << line << "\n";
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  result.wall_seconds = wall.ElapsedSeconds();
  server.Shutdown();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  result.mismatches = mismatches.load();
  if (!all.empty()) {
    result.qps = static_cast<double>(all.size()) / result.wall_seconds;
    result.p50_ms = Percentile(all, 50.0);
    result.p95_ms = Percentile(all, 95.0);
    result.p99_ms = Percentile(all, 99.0);
  }
  return result;
}

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  common::SetGlobalPoolSize(1);  // cross-query concurrency is the subject

  db::SynthImdbOptions opts;
  opts.scale = flags.scale;
  auto database = db::BuildSynthImdb(opts);
  stats::DatabaseStats stats;
  stats.Build(*database);
  wk::GeneratorOptions gen;
  gen.seed = 404;
  wk::QueryGenerator generator(database.get(), gen);
  const auto workload = generator.GenerateLabeled(flags.queries, 2, 5);

  std::ofstream trace_out;
  if (!flags.trace_json.empty()) {
    trace_out.open(flags.trace_json, std::ios::app);
  }
  std::ofstream metrics_out;
  if (!flags.metrics_json.empty()) {
    metrics_out.open(flags.metrics_json, std::ios::app);
  }

  std::printf("%8s %8s %10s %10s %10s %10s %10s %9s\n", "workers", "clients",
              "wall(s)", "qps", "p50(ms)", "p95(ms)", "p99(ms)", "speedup");
  bool ok = true;
  double base_qps = 0.0;
  for (int workers : flags.workers) {
    const common::MetricsSnapshot before =
        common::MetricsRegistry::Global().Snapshot();
    const SweepResult r = RunSweep(*database, stats, workload, workers, flags,
                                   trace_out.is_open() ? &trace_out : nullptr);
    if (base_qps == 0.0) base_qps = r.qps;
    if (r.mismatches > 0) {
      ok = false;
      std::printf("!! %llu result mismatches at %d workers\n",
                  static_cast<unsigned long long>(r.mismatches), workers);
    }
    std::printf("%8d %8d %10.3f %10.1f %10.3f %10.3f %10.3f %8.2fx\n",
                r.workers, r.clients, r.wall_seconds, r.qps, r.p50_ms,
                r.p95_ms, r.p99_ms, base_qps > 0 ? r.qps / base_qps : 0.0);
    if (metrics_out.is_open()) {
      const common::MetricsSnapshot delta =
          common::Delta(before, common::MetricsRegistry::Global().Snapshot());
      char line[512];
      std::snprintf(line, sizeof(line),
                    "{\"bench\":\"serving\",\"workers\":%d,\"clients\":%d,"
                    "\"queries\":%zu,\"wall_seconds\":%.6f,\"qps\":%.3f,"
                    "\"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f,"
                    "\"speedup_vs_1\":%.4f,\"delta\":",
                    r.workers, r.clients, workload.size(), r.wall_seconds,
                    r.qps, r.p50_ms, r.p95_ms, r.p99_ms,
                    base_qps > 0 ? r.qps / base_qps : 0.0);
      metrics_out << line << delta.ToJson() << "}\n";
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lpce::bench

int main(int argc, char** argv) { return lpce::bench::Run(argc, argv); }
