// Ablation (the data-update scenario the paper defers in Sec. 3.2, with the
// progressive-training remedy it suggests in Sec. 7.3): append 30% more data
// with a drifted distribution, then compare on fresh post-drift queries:
//   - the stale LPCE-I (trained pre-drift);
//   - the PostgreSQL-style estimator with refreshed statistics (ANALYZE);
//   - LPCE-I progressively re-trained on a small batch of post-drift queries.
#include <cmath>
#include <cstdio>

#include "bench_world.h"
#include "common/timer.h"
#include "exec/executor.h"

namespace lpce::bench {
namespace {

double MedianRootQ(card::CardinalityEstimator* estimator,
                   const std::vector<wk::LabeledQuery>& queries) {
  std::vector<double> qs;
  for (const auto& labeled : queries) {
    const double est =
        estimator->EstimateSubset(labeled.query, labeled.query.AllRels());
    qs.push_back(exec::QError(est, static_cast<double>(labeled.FinalCard())));
  }
  return Percentile(qs, 50);
}

void Run() {
  const World& world = GetWorld();

  // A private drifted copy of the database (the cached world stays intact).
  db::SynthImdbOptions db_opts;
  db_opts.seed = world.options.seed;
  db_opts.scale = world.options.scale;
  auto drifted = db::BuildSynthImdb(db_opts);
  WallTimer drift_timer;
  db::AppendSynthImdbDrift(drifted.get(), /*fraction=*/0.3, /*seed=*/2024);
  const double drift_seconds = drift_timer.ElapsedSeconds();

  // Refreshed statistics + encoder over the drifted data.
  stats::DatabaseStats fresh_stats(*drifted);
  model::FeatureEncoder fresh_encoder(&drifted->catalog(), &fresh_stats);

  // Post-drift evaluation + progressive-training workloads.
  wk::GeneratorOptions gen;
  gen.seed = 4096;
  gen.require_nonempty = true;
  wk::QueryGenerator generator(drifted.get(), gen);
  auto retrain = generator.GenerateLabeled(200, 5, 8);
  auto eval = generator.GenerateLabeled(30, 6, 8);

  // (1) Stale LPCE-I: pre-drift weights, pre-drift normalization.
  model::TreeModelEstimator stale("LPCE-I (stale)", world.lpce_i.get(),
                                  drifted.get());
  // (2) PostgreSQL with refreshed stats.
  card::HistogramEstimator refreshed_pg(&fresh_stats);
  // (3) Progressive training: continue from the stale weights on the small
  //     post-drift batch (Sec. 7.3's deployment suggestion).
  model::TreeModelConfig config = world.StudentConfig();
  model::TreeModel tuned(&fresh_encoder, config);
  tuned.CopyParamsFrom(*world.lpce_i);
  WallTimer tune_timer;
  model::TrainOptions topt;
  topt.epochs = 10;
  topt.lr = 5e-4f;  // fine-tune gently from the converged weights
  model::TrainTreeModel(&tuned, *drifted, retrain, topt);
  const double tune_seconds = tune_timer.ElapsedSeconds();
  model::TreeModelEstimator tuned_est("LPCE-I (fine-tuned)", &tuned,
                                      drifted.get());

  std::printf("\n=== Data-update ablation (Sec. 3.2 future work) ===\n");
  std::printf("appended 30%% drifted rows in %.2fs; fine-tuning on 200"
              " post-drift queries took %.1fs\n\n",
              drift_seconds, tune_seconds);
  std::printf("%-24s %16s\n", "estimator", "median root q");
  std::printf("%-24s %16.2f\n", "LPCE-I (stale)", MedianRootQ(&stale, eval));
  std::printf("%-24s %16.2f\n", "PostgreSQL (ANALYZEd)",
              MedianRootQ(&refreshed_pg, eval));
  std::printf("%-24s %16.2f\n", "LPCE-I (fine-tuned)",
              MedianRootQ(&tuned_est, eval));
  std::printf("\n(expected: drift degrades the stale model; a short"
              " progressive-training pass on recent queries recovers it)\n");
}

}  // namespace
}  // namespace lpce::bench

int main() {
  lpce::bench::Run();
  return 0;
}
