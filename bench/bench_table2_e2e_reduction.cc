// Paper Table 2: percentiles of end-to-end execution-time reduction relative
// to PostgreSQL (Eq. 9), for Join-six and Join-eight.
//
// Expected shape: every learned estimator has positive reductions at the
// median and above; the 5th percentile (worst case) is strongly negative for
// the slow-inference data-driven stand-ins and mildly negative for LPCE;
// LPCE-R has the best column-wise numbers.
#include <cstdio>

#include "bench_world.h"

namespace lpce::bench {
namespace {

void PrintRows(const char* title, const std::vector<std::string>& names,
               const std::vector<std::vector<double>>& reductions,
               const std::vector<double>& aggregates) {
  std::printf("%s\n", title);
  std::printf("%-12s %9s %9s %9s %9s %9s %12s\n", "Name", "5th", "25th", "50th",
              "75th", "95th", "aggregate");
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("%-12s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %11.1f%%\n",
                names[i].c_str(), Percentile(reductions[i], 5),
                Percentile(reductions[i], 25), Percentile(reductions[i], 50),
                Percentile(reductions[i], 75), Percentile(reductions[i], 95),
                aggregates[i]);
  }
}

void RunSet(const World& world, int joins) {
  const auto& queries = world.test_by_joins.at(joins);
  auto lineup = MakeEstimatorLineup(world);

  // PostgreSQL (histogram) baseline times.
  std::vector<double> pg_times;
  {
    const auto stats = RunWorkload(world, lineup[0], queries);
    for (const auto& s : stats) pg_times.push_back(s.TotalSeconds());
  }
  // The paper's regime: query execution (seconds-minutes) dwarfs model
  // inference. At our scaled-down sizes the short queries are dominated by
  // inference, so we additionally report the slice where execution
  // dominates — the longest-running quartile of baseline queries.
  const double long_cutoff = Percentile(pg_times, 75);

  std::vector<std::string> names;
  std::vector<std::vector<double>> all_red, long_red;
  std::vector<double> all_agg, long_agg;
  for (size_t i = 1; i < lineup.size(); ++i) {
    const auto stats = RunWorkload(world, lineup[i], queries);
    std::vector<double> reductions, reductions_long;
    double total = 0.0, pg_total = 0.0, total_long = 0.0, pg_total_long = 0.0;
    for (size_t q = 0; q < stats.size(); ++q) {
      const double t = stats[q].TotalSeconds();
      const double r = (pg_times[q] - t) / pg_times[q] * 100.0;
      reductions.push_back(r);
      total += t;
      pg_total += pg_times[q];
      if (pg_times[q] >= long_cutoff) {
        reductions_long.push_back(r);
        total_long += t;
        pg_total_long += pg_times[q];
      }
    }
    names.push_back(lineup[i].name);
    all_red.push_back(std::move(reductions));
    all_agg.push_back((pg_total - total) / pg_total * 100.0);
    long_red.push_back(std::move(reductions_long));
    long_agg.push_back((pg_total_long - total_long) / pg_total_long * 100.0);
  }

  char header[128];
  std::snprintf(header, sizeof(header),
                "\n--- Join-%s: reduction vs PostgreSQL (larger is better) ---",
                joins == 6 ? "six" : "eight");
  PrintRows(header, names, all_red, all_agg);
  std::snprintf(header, sizeof(header),
                "\n--- Join-%s, longest-quartile baseline queries only ---",
                joins == 6 ? "six" : "eight");
  PrintRows(header, names, long_red, long_agg);
}

}  // namespace
}  // namespace lpce::bench

int main(int argc, char** argv) {
  lpce::bench::ParseBenchFlags(argc, argv);
  const auto& world = lpce::bench::GetWorld();
  std::printf("\n=== Table 2: end-to-end execution time reduction ===\n");
  lpce::bench::RunSet(world, 6);
  lpce::bench::RunSet(world, 8);
  std::printf("\n(paper: LPCE-R best across percentiles; data-driven baselines"
              " strongly negative at the 5th percentile)\n");
  return 0;
}
