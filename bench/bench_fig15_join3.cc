// Paper Figure 15: end-to-end time on 3-join queries — the regime where the
// accurate-but-slow data-driven estimators win, because a 3-join query needs
// few cardinality estimates (paper: "up to 2^n - 1"), shrinking their
// inference-cost disadvantage.
#include <cstdio>

#include "bench_world.h"

namespace lpce::bench {
namespace {

void Run() {
  const World& world = GetWorld();
  const auto& queries = world.test_by_joins.at(3);
  auto lineup = MakeEstimatorLineup(world);
  std::printf("\n=== Figure 15: Join-three end-to-end time (aggregate) ===\n");
  std::printf("%-12s %10s %12s %12s %10s %10s\n", "Name", "exec(s)", "search(s)",
              "infer(s)", "reopt(s)", "total(s)");
  for (const auto& entry : lineup) {
    const auto stats = RunWorkload(world, entry, queries);
    double exec = 0, plan = 0, infer = 0, reopt = 0;
    for (const auto& s : stats) {
      exec += s.exec_seconds;
      plan += s.plan_seconds;
      infer += s.inference_seconds;
      reopt += s.reopt_seconds;
    }
    std::printf("%-12s %10.3f %12.3f %12.3f %10.3f %10.3f\n", entry.name.c_str(),
                exec, plan, infer, reopt, exec + plan + infer + reopt);
  }
  std::printf("\n(paper: FLAT and NeuroCard outperform LPCE-R on 3-join"
              " queries — high accuracy matters more when few estimates are"
              " needed)\n");
}

}  // namespace
}  // namespace lpce::bench

int main(int argc, char** argv) {
  lpce::bench::ParseBenchFlags(argc, argv);
  lpce::bench::Run();
  return 0;
}
