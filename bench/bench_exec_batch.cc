// Vectorized-executor bench: T_E on a join-heavy scan+filter+join workload,
// row-at-a-time (Volcano-style oracle) vs the batch path (exec/vectorized.h)
// vs the late-materialization path (row-id intermediates), plus the
// bit-identity pin the speedups are only allowed to ride on: every finished
// operator's rowset in batch and late mode, at pool sizes {1, 2, 4}, must
// equal the row path's single-thread output bit for bit (late intermediates
// gathered through exec::MaterializeRowSet first). Peak intermediate bytes
// are reported per path; the late path must also shrink them.
//
// Self-contained like bench_plancache: builds its own synthetic database,
// runs in seconds.
//
// Flags:
//   --scale=F             synthetic database scale (default 0.2)
//   --queries=N           generated queries (default 8)
//   --joins=N             joins per query (default 8 — the Join-eight shape)
//   --batch=N             batch size for the vectorized path (default 1024)
//   --repeats=N           timing repeats per query; min is kept (default 5)
//   --min_speedup=F       fail (exit 1) if batch-path T_E speedup over the
//                         row path is below this (default 2; 0 disables)
//   --min_late_speedup=F  fail (exit 1) if late-mat T_E speedup over the
//                         batch path is below this (default 1; 0 disables);
//                         also requires late peak bytes < batch peak bytes
//   --metrics_json=PATH   append one summary JSON line
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "exec/executor.h"
#include "exec/vectorized.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace lpce::bench {
namespace {

struct Flags {
  double scale = 0.2;
  int queries = 8;
  int joins = 8;
  int batch = 1024;
  int repeats = 5;
  double min_speedup = 2.0;
  double min_late_speedup = 1.0;
  std::string metrics_json;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--scale=")) {
      flags.scale = std::atof(v);
    } else if (const char* v = value_of("--queries=")) {
      flags.queries = std::atoi(v);
    } else if (const char* v = value_of("--joins=")) {
      flags.joins = std::atoi(v);
    } else if (const char* v = value_of("--batch=")) {
      flags.batch = std::atoi(v);
    } else if (const char* v = value_of("--repeats=")) {
      flags.repeats = std::atoi(v);
    } else if (const char* v = value_of("--min_speedup=")) {
      flags.min_speedup = std::atof(v);
    } else if (const char* v = value_of("--min_late_speedup=")) {
      flags.min_late_speedup = std::atof(v);
    } else if (const char* v = value_of("--metrics_json=")) {
      flags.metrics_json = v;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--scale=F] [--queries=N] "
                   "[--joins=N] [--batch=N] [--repeats=N] [--min_speedup=F] "
                   "[--min_late_speedup=F] [--metrics_json=PATH]\n",
                   arg.c_str(), argv[0]);
      std::exit(2);
    }
  }
  if (flags.queries <= 0 || flags.joins <= 0 || flags.batch <= 0 ||
      flags.repeats <= 0) {
    std::fprintf(stderr, "need positive --queries/--joins/--batch/--repeats\n");
    std::exit(2);
  }
  return flags;
}

/// Post-order finished rowsets + root count of one executor run.
struct Outcome {
  std::vector<exec::RowSetPtr> rowsets;
  uint64_t result_rows = 0;
  double exec_seconds = 0.0;
  size_t peak_bytes = 0;
};

Outcome RunOnce(const db::Database& database, const qry::Query& query,
                int batch_size, int late = 0) {
  Outcome outcome;
  auto plan = exec::BuildCanonicalHashPlan(query);
  exec::Executor executor(&database, &query);
  exec::Executor::Options options;
  options.batch_size = batch_size;
  options.late_materialization = late;
  WallTimer timer;
  exec::Executor::RunResult result = executor.Run(plan.get(), options);
  outcome.exec_seconds = timer.ElapsedSeconds();
  outcome.peak_bytes = executor.peak_intermediate_bytes();
  std::vector<exec::PlanNode*> nodes;
  exec::PostOrderPlan(plan.get(), &nodes);
  for (exec::PlanNode* node : nodes) {
    auto it = result.finished.find(node);
    outcome.rowsets.push_back(it != result.finished.end() ? it->second
                                                          : nullptr);
  }
  if (std::getenv("LPCE_BENCH_PER_NODE") != nullptr) {
    for (exec::PlanNode* node : nodes) {
      std::printf("  [batch=%d] %-12s card=%-10llu %.3fms\n", batch_size,
                  exec::PhysOpName(node->op),
                  static_cast<unsigned long long>(node->actual_card),
                  node->exec_seconds * 1e3);
    }
  }
  outcome.result_rows =
      result.result != nullptr ? result.result->num_rows() : 0;
  return outcome;
}

bool BitIdentical(const Outcome& a, const Outcome& b) {
  if (a.result_rows != b.result_rows) return false;
  if (a.rowsets.size() != b.rowsets.size()) return false;
  for (size_t i = 0; i < a.rowsets.size(); ++i) {
    if (a.rowsets[i] == nullptr || b.rowsets[i] == nullptr) {
      return a.rowsets[i] == b.rowsets[i];
    }
    if (!(a.rowsets[i]->schema == b.rowsets[i]->schema)) return false;
    if (a.rowsets[i]->row_count != b.rowsets[i]->row_count) return false;
    if (a.rowsets[i]->cols != b.rowsets[i]->cols) return false;
  }
  return true;
}

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);

  db::SynthImdbOptions opts;
  opts.scale = flags.scale;
  auto database = db::BuildSynthImdb(opts);
  wk::GeneratorOptions gen;
  gen.seed = 811;
  wk::QueryGenerator generator(database.get(), gen);
  std::vector<qry::Query> queries;
  for (int i = 0; i < flags.queries; ++i) {
    queries.push_back(generator.Generate(flags.joins));
  }

  const common::MetricsSnapshot before =
      common::MetricsRegistry::Global().Snapshot();

  // Timing: single-thread T_E, min of repeats, both paths over the same
  // canonical hash plans. Single-thread is the honest comparison — the pool
  // speeds both paths up by the same chunking.
  common::SetGlobalPoolSize(1);
  double row_seconds = 0.0, batch_seconds = 0.0, late_seconds = 0.0;
  uint64_t total_rows = 0;
  size_t row_peak = 0, batch_peak = 0, late_peak = 0;
  for (const qry::Query& query : queries) {
    double row_min = 0.0, batch_min = 0.0, late_min = 0.0;
    for (int r = 0; r < flags.repeats; ++r) {
      const Outcome row = RunOnce(*database, query, /*batch_size=*/0);
      if (r == 0 || row.exec_seconds < row_min) row_min = row.exec_seconds;
      const Outcome batch = RunOnce(*database, query, flags.batch);
      if (r == 0 || batch.exec_seconds < batch_min) {
        batch_min = batch.exec_seconds;
      }
      const Outcome late =
          RunOnce(*database, query, flags.batch, /*late=*/1);
      if (r == 0 || late.exec_seconds < late_min) {
        late_min = late.exec_seconds;
      }
      if (r == 0) {
        total_rows += row.result_rows;
        row_peak += row.peak_bytes;
        batch_peak += batch.peak_bytes;
        late_peak += late.peak_bytes;
      }
    }
    row_seconds += row_min;
    batch_seconds += batch_min;
    late_seconds += late_min;
  }
  const double speedup =
      batch_seconds > 0.0 ? row_seconds / batch_seconds : 0.0;
  const double late_speedup =
      late_seconds > 0.0 ? batch_seconds / late_seconds : 0.0;

  // Bit-identity pin: the batch and late paths at pool sizes {1, 2, 4}
  // against the row path's single-thread output, every finished operator
  // compared (late rowsets gathered back to payload columns first).
  uint64_t mismatches = 0;
  for (const qry::Query& query : queries) {
    common::SetGlobalPoolSize(1);
    const Outcome oracle = RunOnce(*database, query, /*batch_size=*/0);
    for (int pool : {1, 2, 4}) {
      common::SetGlobalPoolSize(pool);
      const Outcome got = RunOnce(*database, query, flags.batch);
      if (!BitIdentical(oracle, got)) {
        ++mismatches;
        std::printf("!! bit-identity mismatch: batch=%d pool=%d\n",
                    flags.batch, pool);
      }
      Outcome late = RunOnce(*database, query, flags.batch, /*late=*/1);
      for (exec::RowSetPtr& rs : late.rowsets) {
        if (rs != nullptr) rs = exec::MaterializeRowSet(*database, rs);
      }
      if (!BitIdentical(oracle, late)) {
        ++mismatches;
        std::printf("!! bit-identity mismatch: late batch=%d pool=%d\n",
                    flags.batch, pool);
      }
    }
  }
  common::SetGlobalPoolSize(0);

  std::printf("exec batch bench: %d queries x %d joins, scale %.2f, "
              "batch %d, %llu result rows\n",
              flags.queries, flags.joins, flags.scale, flags.batch,
              static_cast<unsigned long long>(total_rows));
  std::printf("%-28s %10.1fms  peak %10llu B\n", "row-at-a-time T_E",
              row_seconds * 1e3, static_cast<unsigned long long>(row_peak));
  std::printf("%-28s %10.1fms  peak %10llu B\n", "vectorized T_E",
              batch_seconds * 1e3,
              static_cast<unsigned long long>(batch_peak));
  std::printf("%-28s %10.1fms  peak %10llu B\n", "late-mat T_E",
              late_seconds * 1e3, static_cast<unsigned long long>(late_peak));
  std::printf("batch-path speedup: %.2fx\n", speedup);
  std::printf("late-mat speedup over batch: %.2fx, peak bytes %.1f%% of "
              "batch\n",
              late_speedup,
              batch_peak > 0
                  ? 100.0 * static_cast<double>(late_peak) /
                        static_cast<double>(batch_peak)
                  : 0.0);

  bool ok = true;
  if (mismatches > 0) {
    ok = false;
    std::printf("!! %llu bit-identity mismatches\n",
                static_cast<unsigned long long>(mismatches));
  }
  if (flags.min_speedup > 0.0 && speedup < flags.min_speedup) {
    ok = false;
    std::printf("!! batch speedup %.2fx below required %.2fx\n", speedup,
                flags.min_speedup);
  }
  if (flags.min_late_speedup > 0.0) {
    if (late_speedup < flags.min_late_speedup) {
      ok = false;
      std::printf("!! late-mat speedup %.2fx below required %.2fx\n",
                  late_speedup, flags.min_late_speedup);
    }
    if (late_peak >= batch_peak) {
      ok = false;
      std::printf("!! late-mat peak bytes %llu not below batch peak %llu\n",
                  static_cast<unsigned long long>(late_peak),
                  static_cast<unsigned long long>(batch_peak));
    }
  }

  if (!flags.metrics_json.empty()) {
    std::ofstream metrics_out(flags.metrics_json, std::ios::app);
    const common::MetricsSnapshot delta =
        common::Delta(before, common::MetricsRegistry::Global().Snapshot());
    char line[768];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"exec_batch\",\"queries\":%d,\"joins\":%d,"
        "\"scale\":%.3f,\"batch\":%d,\"repeats\":%d,\"row_te_ms\":%.3f,"
        "\"batch_te_ms\":%.3f,\"late_te_ms\":%.3f,\"speedup\":%.3f,"
        "\"late_speedup\":%.3f,\"row_peak_bytes\":%llu,"
        "\"batch_peak_bytes\":%llu,\"late_peak_bytes\":%llu,"
        "\"result_rows\":%llu,\"mismatches\":%llu,\"delta\":",
        flags.queries, flags.joins, flags.scale, flags.batch, flags.repeats,
        row_seconds * 1e3, batch_seconds * 1e3, late_seconds * 1e3, speedup,
        late_speedup, static_cast<unsigned long long>(row_peak),
        static_cast<unsigned long long>(batch_peak),
        static_cast<unsigned long long>(late_peak),
        static_cast<unsigned long long>(total_rows),
        static_cast<unsigned long long>(mismatches));
    metrics_out << line << delta.ToJson() << "}\n";
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lpce::bench

int main(int argc, char** argv) { return lpce::bench::Run(argc, argv); }
