// Paper Figure 14: for the queries that trigger re-optimization, compare the
// end-to-end time decomposition of LPCE-I (no re-optimization) vs LPCE-R.
//
// Expected shape: LPCE-R cuts the execution slice by a multiple (paper:
// 3.19x/3.32x overall) at the cost of a small re-optimization slice.
#include <cstdio>

#include "bench_world.h"

namespace lpce::bench {
namespace {

void RunSet(const World& world, int joins) {
  const auto& queries = world.test_by_joins.at(joins);
  auto lineup = MakeEstimatorLineup(world);
  const EstimatorEntry* lpce_i = nullptr;
  const EstimatorEntry* lpce_r = nullptr;
  for (const auto& entry : lineup) {
    if (entry.name == "LPCE-I") lpce_i = &entry;
    if (entry.name == "LPCE-R") lpce_r = &entry;
  }

  const auto stats_r = RunWorkload(world, *lpce_r, queries);
  const auto stats_i = RunWorkload(world, *lpce_i, queries);

  // Restrict to queries that actually re-optimized under LPCE-R.
  double i_exec = 0, i_plan = 0, i_infer = 0;
  double r_exec = 0, r_plan = 0, r_infer = 0, r_reopt = 0;
  int reoptimized = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    if (stats_r[q].num_reopts == 0) continue;
    ++reoptimized;
    i_exec += stats_i[q].exec_seconds;
    i_plan += stats_i[q].plan_seconds;
    i_infer += stats_i[q].inference_seconds;
    r_exec += stats_r[q].exec_seconds;
    r_plan += stats_r[q].plan_seconds;
    r_infer += stats_r[q].inference_seconds;
    r_reopt += stats_r[q].reopt_seconds;
  }
  const double i_total = i_exec + i_plan + i_infer;
  const double r_total = r_exec + r_plan + r_infer + r_reopt;
  std::printf("\n--- Join-%s: %d of %zu queries triggered re-optimization ---\n",
              joins == 6 ? "six" : "eight", reoptimized, queries.size());
  std::printf("%-8s %10s %12s %12s %10s %10s\n", "model", "exec(s)", "search(s)",
              "infer(s)", "reopt(s)", "total(s)");
  std::printf("%-8s %10.3f %12.3f %12.3f %10.3f %10.3f\n", "LPCE-I", i_exec,
              i_plan, i_infer, 0.0, i_total);
  std::printf("%-8s %10.3f %12.3f %12.3f %10.3f %10.3f\n", "LPCE-R", r_exec,
              r_plan, r_infer, r_reopt, r_total);
  if (r_total > 0.0) {
    std::printf("speedup of LPCE-R over LPCE-I on these queries: %.2fx\n",
                i_total / r_total);
  }
}

}  // namespace
}  // namespace lpce::bench

int main(int argc, char** argv) {
  lpce::bench::ParseBenchFlags(argc, argv);
  const auto& world = lpce::bench::GetWorld();
  std::printf("\n=== Figure 14: time decomposition of re-optimized queries ===\n");
  lpce::bench::RunSet(world, 6);
  lpce::bench::RunSet(world, 8);
  std::printf("\n(paper: 3.19x / 3.32x end-to-end reduction on re-optimized"
              " queries for Join-six / Join-eight)\n");
  return 0;
}
