// Paper Figure 11: the execution-time spread of the test queries on the
// PostgreSQL-style baseline. The paper selects test queries whose times span
// three orders of magnitude; this bench verifies ours spread widely too.
#include <cstdio>

#include "bench_world.h"

namespace lpce::bench {
namespace {

void Run() {
  const World& world = GetWorld();
  auto lineup = MakeEstimatorLineup(world);
  std::printf("\n=== Figure 11: PostgreSQL execution time spread ===\n");
  std::printf("%-10s %10s %10s %10s %10s %10s %10s\n", "set", "min(ms)",
              "p25(ms)", "median(ms)", "p75(ms)", "p95(ms)", "max(ms)");
  for (int joins : {6, 8}) {
    const auto stats = RunWorkload(world, lineup[0], world.test_by_joins.at(joins));
    std::vector<double> times;
    for (const auto& s : stats) times.push_back(s.TotalSeconds() * 1e3);
    std::printf("Join-%-5d %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n", joins,
                Percentile(times, 0), Percentile(times, 25), Percentile(times, 50),
                Percentile(times, 75), Percentile(times, 95),
                Percentile(times, 100));
  }
  std::printf("\n(paper: times spread from ~1s to ~1500s; our scaled-down data"
              " spreads over a comparable dynamic range in milliseconds)\n");
}

}  // namespace
}  // namespace lpce::bench

int main(int argc, char** argv) {
  lpce::bench::ParseBenchFlags(argc, argv);
  lpce::bench::Run();
  return 0;
}
