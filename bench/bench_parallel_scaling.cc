// Thread-scaling study for the parallel substrate (common/thread_pool.h):
// hash join build+probe, seq-scan residual filtering, and the nn matrix
// products, each at pool caps 1/2/4/8. Prints per-workload wall times and
// speedups over the 1-thread run, and verifies that every thread count
// produces the same result as the sequential path (the substrate's
// determinism contract).
//
// Unlike the figure benches this one is self-contained — it builds its own
// synthetic tables instead of GetWorld(), so it runs in seconds.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "exec/executor.h"
#include "nn/matrix.h"
#include "storage/database.h"

namespace lpce {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr int kRepeats = 5;

struct Workload {
  const char* name;
  // Runs once under `threads`; returns a checksum for cross-count equality.
  double (*run)(int threads);
};

struct JoinWorld {
  db::Database database;
  qry::Query query;
  int32_t a = -1, b = -1;

  JoinWorld() {
    a = database.AddTable({"a", {{"k"}, {"v"}}});
    b = database.AddTable({"b", {{"k"}, {"w"}}});
    database.catalog().AddJoinEdge({a, 0}, {b, 0});
    query.tables = {a, b};
    query.joins = {{{a, 0}, {b, 0}}};
    Rng rng(7);
    const int64_t rows = 400000;
    for (int64_t i = 0; i < rows; ++i) {
      database.table(a).AppendRow(
          {static_cast<int64_t>(rng.UniformInt(0, 200000)), i});
      database.table(b).AppendRow(
          {static_cast<int64_t>(rng.UniformInt(0, 200000)), i});
    }
    database.BuildAllIndexes();
  }

  std::unique_ptr<exec::PlanNode> MakePlan(bool with_filter) const {
    auto scan_a = std::make_unique<exec::PlanNode>();
    scan_a->op = exec::PhysOp::kSeqScan;
    scan_a->rels = qry::Bit(0);
    scan_a->table_pos = 0;
    if (with_filter) {
      scan_a->filters = {{{a, 1}, qry::CmpOp::kLt, 300000}};
    }
    auto scan_b = std::make_unique<exec::PlanNode>();
    scan_b->op = exec::PhysOp::kSeqScan;
    scan_b->rels = qry::Bit(1);
    scan_b->table_pos = 1;
    auto join = std::make_unique<exec::PlanNode>();
    join->op = exec::PhysOp::kHashJoin;
    join->rels = scan_a->rels | scan_b->rels;
    join->outer = std::move(scan_a);
    join->inner = std::move(scan_b);
    join->outer_key = {a, 0};
    join->inner_key = {b, 0};
    return join;
  }
};

JoinWorld& GetJoinWorld() {
  static JoinWorld world;
  return world;
}

double RunJoin(int threads) {
  JoinWorld& world = GetJoinWorld();
  auto plan = world.MakePlan(/*with_filter=*/false);
  exec::Executor executor(&world.database, &world.query);
  exec::Executor::Options options;
  options.num_threads = threads;
  exec::Executor::RunResult run = executor.Run(plan.get(), options);
  double checksum = static_cast<double>(run.result->num_rows());
  for (const auto& col : run.result->cols) {
    int64_t acc = 0;
    for (size_t i = 0; i < col.size(); i += 97) acc += col[i] * static_cast<int64_t>(i + 1);
    checksum += static_cast<double>(acc % 1000000007);
  }
  return checksum;
}

double RunScan(int threads) {
  JoinWorld& world = GetJoinWorld();
  auto plan = world.MakePlan(/*with_filter=*/true);
  exec::Executor executor(&world.database, &world.query);
  exec::Executor::Options options;
  options.num_threads = threads;
  exec::Executor::RunResult run = executor.Run(plan.get(), options);
  return static_cast<double>(run.result->num_rows());
}

double RunMatMul(int threads) {
  static nn::Matrix a, b;
  if (a.empty()) {
    Rng rng(11);
    a = nn::Matrix(384, 384);
    b = nn::Matrix(384, 384);
    for (size_t i = 0; i < a.size(); ++i) {
      a.data()[i] = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
      b.data()[i] = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
    }
  }
  nn::SetMatMulThreads(threads);
  double checksum = 0.0;
  for (int r = 0; r < 8; ++r) {
    checksum += static_cast<double>(a.MatMul(b).SumAbs());
    checksum += static_cast<double>(a.TransposeMatMul(b).SumAbs());
    checksum += static_cast<double>(a.MatMulTranspose(b).SumAbs());
  }
  nn::SetMatMulThreads(0);
  return checksum;
}

}  // namespace
}  // namespace lpce

int main() {
  using lpce::common::SetGlobalPoolSize;
  SetGlobalPoolSize(8);  // enough workers for the largest cap below

  const lpce::Workload workloads[] = {
      {"hash_join", &lpce::RunJoin},
      {"scan_filter", &lpce::RunScan},
      {"matmul", &lpce::RunMatMul},
  };
  std::printf("%-12s %8s %12s %10s\n", "workload", "threads", "seconds",
              "speedup");
  bool deterministic = true;
  for (const auto& w : workloads) {
    double base_seconds = 0.0;
    double base_checksum = 0.0;
    for (int threads : lpce::kThreadCounts) {
      double best = 1e100;
      double checksum = 0.0;
      for (int r = 0; r < lpce::kRepeats; ++r) {
        lpce::WallTimer timer;
        checksum = w.run(threads);
        best = std::min(best, timer.ElapsedSeconds());
      }
      if (threads == 1) {
        base_seconds = best;
        base_checksum = checksum;
      } else if (checksum != base_checksum) {
        deterministic = false;
        std::printf("!! %s: checksum mismatch at %d threads\n", w.name, threads);
      }
      std::printf("%-12s %8d %12.4f %9.2fx\n", w.name, threads, best,
                  base_seconds / best);
    }
  }
  std::printf("determinism: %s\n", deterministic ? "ok" : "MISMATCH");
  return deterministic ? 0 : 1;
}
