// Paper Figure 18: how sample-collection time, model-training time, and the
// resulting end-to-end query time change with the number of training
// queries. Trains a fresh LPCE-I (teacher + distillation) per sweep point.
//
// Expected shape: collection + training time grow linearly; end-to-end time
// decreases with diminishing returns.
#include <cstdio>

#include "bench_world.h"
#include "common/timer.h"

namespace lpce::bench {
namespace {

void Run() {
  const World& world = GetWorld();
  const int full = static_cast<int>(world.train.size());
  const std::vector<int> sweep = {full / 8, full / 4, full / 2, full};

  // A small end-to-end evaluation set (Join-six and Join-eight heads).
  std::vector<wk::LabeledQuery> eval;
  for (int joins : {6, 8}) {
    const auto& set = world.test_by_joins.at(joins);
    for (size_t i = 0; i < std::min<size_t>(set.size(), 10); ++i) {
      eval.push_back(set[i]);
    }
  }

  std::printf("\n=== Figure 18: training dynamics vs number of samples ===\n");
  std::printf("%8s %14s %12s %10s %12s %14s\n", "samples", "collect(s)",
              "train(s)", "epochs", "final loss", "e2e eval(s)");
  for (int n : sweep) {
    if (n < 8) continue;
    // Sample collection: re-label the n training queries from scratch
    // (execution of the canonical plans; paper Sec. 7.3 observes this
    // dominates training cost).
    WallTimer collect_timer;
    std::vector<wk::LabeledQuery> subset(world.train.begin(),
                                         world.train.begin() + n);
    for (auto& labeled : subset) {
      labeled.true_cards.clear();
      wk::LabelQuery(*world.database, &labeled);
    }
    const double collect_seconds = collect_timer.ElapsedSeconds();

    // Training cost and dynamics come straight from the TrainStats reports —
    // no bench-side timer around the calls.
    model::TreeModel teacher(world.encoder.get(), world.TeacherConfig());
    model::TrainOptions topt;
    topt.epochs = 12;
    topt.tag = "fig18_teacher@" + std::to_string(n);
    const model::TrainStats teacher_stats =
        model::TrainTreeModel(&teacher, *world.database, subset, topt);
    model::TreeModel student(world.encoder.get(), world.StudentConfig());
    model::DistillOptions distill;
    distill.hint_epochs = 8;
    distill.predict_epochs = 24;
    distill.tag = "fig18_distill@" + std::to_string(n);
    const model::TrainStats distill_stats = model::DistillTreeModel(
        &student, teacher, *world.database, subset, distill);
    const double train_seconds =
        teacher_stats.total_seconds + distill_stats.total_seconds;
    const size_t train_epochs =
        teacher_stats.epochs.size() + distill_stats.epochs.size();

    EstimatorEntry entry;
    entry.name = "LPCE-I@" + std::to_string(n);
    entry.estimator = std::make_unique<model::TreeModelEstimator>(
        entry.name, &student, world.database.get());
    const auto stats = RunWorkload(world, entry, eval);
    double e2e = 0.0;
    for (const auto& s : stats) e2e += s.TotalSeconds();

    std::printf("%8d %14.2f %12.2f %10zu %12.4f %14.3f\n", n, collect_seconds,
                train_seconds, train_epochs, distill_stats.final_train_loss(),
                e2e);
  }
  std::printf("\n(paper: collection dominates and grows linearly; execution"
              " time falls with diminishing returns)\n");
}

}  // namespace
}  // namespace lpce::bench

int main(int argc, char** argv) {
  lpce::bench::ParseBenchFlags(argc, argv);
  lpce::bench::Run();
  return 0;
}
