// Paper Figure 17: a case study of one query whose plan is repaired by
// re-optimization. Prints the initial plan (chosen with LPCE-I estimates),
// the re-optimized plan, and the end-to-end times with and without
// re-optimization.
#include <cstdio>

#include "bench_world.h"

namespace lpce::bench {
namespace {

void Run() {
  const World& world = GetWorld();
  auto lineup = MakeEstimatorLineup(world);
  const EstimatorEntry* lpce_i = nullptr;
  const EstimatorEntry* lpce_r = nullptr;
  for (const auto& entry : lineup) {
    if (entry.name == "LPCE-I") lpce_i = &entry;
    if (entry.name == "LPCE-R") lpce_r = &entry;
  }

  eng::Engine engine(world.database.get(), opt::CostModel{});
  eng::RunConfig reopt_config = lpce_r->run_config;

  std::printf("\n=== Figure 17: re-optimization case study ===\n");
  // Find the query where re-optimization helps the most.
  const wk::LabeledQuery* best_query = nullptr;
  eng::RunStats best_r, best_i;
  double best_gain = 1.0;
  for (int joins : {8, 6}) {
    for (const auto& labeled : world.test_by_joins.at(joins)) {
      eng::RunStats r = engine.RunQuery(labeled.query, lpce_r->estimator.get(),
                                        lpce_r->refiner.get(), reopt_config);
      if (r.num_reopts == 0) continue;
      eng::RunStats i =
          engine.RunQuery(labeled.query, lpce_i->estimator.get(), nullptr, {});
      const double gain = i.TotalSeconds() / std::max(r.TotalSeconds(), 1e-9);
      if (gain > best_gain) {
        best_gain = gain;
        best_query = &labeled;
        best_r = r;
        best_i = i;
      }
    }
    if (best_query != nullptr) break;
  }
  if (best_query == nullptr) {
    std::printf("no query triggered re-optimization at this scale\n");
    return;
  }

  std::printf("\nQuery:\n  %s\n",
              best_query->query.ToString(world.database->catalog()).c_str());
  std::printf("\nInitial plan (LPCE-I estimates):\n%s",
              best_r.initial_plan.c_str());
  std::printf("\nFinal plan after %d re-optimization(s):\n%s",
              best_r.num_reopts, best_r.final_plan.c_str());
  std::printf("\nLPCE-I (no re-optimization): %8.2f ms end-to-end\n",
              best_i.TotalSeconds() * 1e3);
  std::printf("LPCE-R (re-optimized):       %8.2f ms end-to-end (%.2fx faster)\n",
              best_r.TotalSeconds() * 1e3, best_gain);
  std::printf("\n(paper example: 8145 ms -> 3906 ms, >2x, with the plan"
              " switching from a left-deep nested-loop mistake to a bushy"
              " hash-join tree)\n");
}

}  // namespace
}  // namespace lpce::bench

int main() {
  lpce::bench::Run();
  return 0;
}
