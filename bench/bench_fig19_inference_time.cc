// Paper Figure 19: average model inference time for one cardinality
// estimation — LPCE-T (LSTM large), LPCE-S (SRU large), LPCE-C (SRU small,
// direct), LPCE-I (SRU small, distilled). Uses google-benchmark, then prints
// each model's training-cost summary (TrainStats) so inference speed can be
// read against what the model cost to train.
//
// Expected shape: SRU ~1.7x faster than LSTM at equal size; the compressed
// models another ~1.8x faster (paper Sec. 7.3).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_world.h"

namespace lpce::bench {
namespace {

void EstimateOnce(benchmark::State& state, const model::TreeModel& tree_model) {
  const World& world = GetWorld();
  const auto& queries = world.test_by_joins.at(8);
  model::TreeModelEstimator estimator("bench", &tree_model, world.database.get());
  size_t i = 0;
  for (auto _ : state) {
    const auto& labeled = queries[i % queries.size()];
    benchmark::DoNotOptimize(
        estimator.EstimateSubset(labeled.query, labeled.query.AllRels()));
    ++i;
  }
}

void BM_LpceT(benchmark::State& state) { EstimateOnce(state, *GetWorld().lpce_t); }
void BM_LpceS(benchmark::State& state) { EstimateOnce(state, *GetWorld().lpce_s); }
void BM_LpceC(benchmark::State& state) { EstimateOnce(state, *GetWorld().lpce_c); }
void BM_LpceI(benchmark::State& state) { EstimateOnce(state, *GetWorld().lpce_i); }

BENCHMARK(BM_LpceT)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LpceS)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LpceC)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LpceI)->Unit(benchmark::kMicrosecond);

void PrintTrainingSummary() {
  const World& world = GetWorld();
  if (world.train_stats.empty()) {
    std::printf("\n(training summary unavailable: models loaded from cache;"
                " delete %s to retrain)\n", world.options.cache_dir.c_str());
    return;
  }
  std::printf("\n=== training cost per model (this process) ===\n");
  std::printf("%8s %8s %10s %12s %12s\n", "model", "epochs", "best", "train(s)",
              "final loss");
  for (const char* tag : {"lpce_t", "lpce_s", "lpce_c", "lpce_i"}) {
    auto it = world.train_stats.find(tag);
    if (it == world.train_stats.end()) continue;
    const model::TrainStats& s = it->second;
    std::printf("%8s %8zu %10d %12.2f %12.4f\n", tag, s.epochs.size(),
                s.best_epoch, s.total_seconds, s.final_train_loss());
  }
}

}  // namespace
}  // namespace lpce::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lpce::bench::ParseBenchFlags(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpce::bench::PrintTrainingSummary();
  return 0;
}
