// Paper Figure 19: average model inference time for one cardinality
// estimation — LPCE-T (LSTM large), LPCE-S (SRU large), LPCE-C (SRU small,
// direct), LPCE-I (SRU small, distilled). Uses google-benchmark.
//
// Expected shape: SRU ~1.7x faster than LSTM at equal size; the compressed
// models another ~1.8x faster (paper Sec. 7.3).
#include <benchmark/benchmark.h>

#include "bench_world.h"

namespace lpce::bench {
namespace {

void EstimateOnce(benchmark::State& state, const model::TreeModel& tree_model) {
  const World& world = GetWorld();
  const auto& queries = world.test_by_joins.at(8);
  model::TreeModelEstimator estimator("bench", &tree_model, world.database.get());
  size_t i = 0;
  for (auto _ : state) {
    const auto& labeled = queries[i % queries.size()];
    benchmark::DoNotOptimize(
        estimator.EstimateSubset(labeled.query, labeled.query.AllRels()));
    ++i;
  }
}

void BM_LpceT(benchmark::State& state) { EstimateOnce(state, *GetWorld().lpce_t); }
void BM_LpceS(benchmark::State& state) { EstimateOnce(state, *GetWorld().lpce_s); }
void BM_LpceC(benchmark::State& state) { EstimateOnce(state, *GetWorld().lpce_c); }
void BM_LpceI(benchmark::State& state) { EstimateOnce(state, *GetWorld().lpce_i); }

BENCHMARK(BM_LpceT)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LpceS)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LpceC)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LpceI)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lpce::bench

BENCHMARK_MAIN();
