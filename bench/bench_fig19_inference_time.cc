// Paper Figure 19: average model inference time for one cardinality
// estimation — LPCE-T (LSTM large), LPCE-S (SRU large), LPCE-C (SRU small,
// direct), LPCE-I (SRU small, distilled). Uses google-benchmark, then prints
// each model's training-cost summary (TrainStats) so inference speed can be
// read against what the model cost to train.
//
// Expected shape: SRU ~1.7x faster than LSTM at equal size; the compressed
// models another ~1.8x faster (paper Sec. 7.3).
// PR 4 extension: per-node latency comparison of the three inference paths —
// the taped autograd Forward (the seed path), the legacy recursive fast walk
// (tape-free, node-at-a-time), and the level-batched tape-free Infer — plus
// a multi-tree batch lane. Prints per-node times and speedups, verifies the
// batched outputs are bit-identical to Forward, and appends one JSON summary
// line per model to the --metrics_json file.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <vector>

#include "bench_world.h"
#include "common/logging.h"
#include "lpce/tree_model.h"

namespace lpce::bench {
namespace {

void EstimateOnce(benchmark::State& state, const model::TreeModel& tree_model) {
  const World& world = GetWorld();
  const auto& queries = world.test_by_joins.at(8);
  model::TreeModelEstimator estimator("bench", &tree_model, world.database.get());
  size_t i = 0;
  for (auto _ : state) {
    const auto& labeled = queries[i % queries.size()];
    benchmark::DoNotOptimize(
        estimator.EstimateSubset(labeled.query, labeled.query.AllRels()));
    ++i;
  }
}

void BM_LpceT(benchmark::State& state) { EstimateOnce(state, *GetWorld().lpce_t); }
void BM_LpceS(benchmark::State& state) { EstimateOnce(state, *GetWorld().lpce_s); }
void BM_LpceC(benchmark::State& state) { EstimateOnce(state, *GetWorld().lpce_c); }
void BM_LpceI(benchmark::State& state) { EstimateOnce(state, *GetWorld().lpce_i); }

BENCHMARK(BM_LpceT)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LpceS)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LpceC)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LpceI)->Unit(benchmark::kMicrosecond);

// ---- Inference-path comparison (PR 4) ----

/// The join-8 test workload as estimation trees (canonical join order, true
/// cardinality labels attached), shared by the path lanes below.
struct TreeSet {
  std::vector<const qry::Query*> queries;
  std::vector<std::unique_ptr<model::EstNode>> trees;
  size_t total_nodes = 0;  // non-injected nodes across all trees
};

size_t CountNodes(const model::EstNode* n) {
  if (n == nullptr || n->is_injected()) return 0;
  return 1 + CountNodes(n->left.get()) + CountNodes(n->right.get());
}

const TreeSet& GetTreeSet() {
  static const TreeSet set = [] {
    TreeSet s;
    const World& world = GetWorld();
    for (const auto& labeled : world.test_by_joins.at(8)) {
      auto logical =
          qry::BuildCanonicalTree(labeled.query, labeled.query.AllRels());
      s.trees.push_back(model::MakeEstTree(labeled.query, logical.get(),
                                           *world.database,
                                           &labeled.true_cards));
      s.queries.push_back(&labeled.query);
      s.total_nodes += CountNodes(s.trees.back().get());
    }
    return s;
  }();
  return set;
}

enum class Path { kTaped, kFastWalk, kBatched, kBatchedMultiTree };

/// One state iteration = one tree (or all trees for the multi-tree lane);
/// items processed = plan nodes, so benchmark's items/s is nodes/s and the
/// per-node latency is its inverse.
void PerNodeLane(benchmark::State& state, const model::TreeModel& m,
                 Path path) {
  const TreeSet& set = GetTreeSet();
  model::TreeModel::SetBatchedInferEnabled(path != Path::kFastWalk);
  std::vector<std::pair<const qry::Query*, const model::EstNode*>> batch;
  for (size_t t = 0; t < set.trees.size(); ++t) {
    batch.emplace_back(set.queries[t], set.trees[t].get());
  }
  std::vector<std::vector<model::TreeModel::InferNodeOutput>> outs;
  int64_t items = 0;
  size_t i = 0;
  for (auto _ : state) {
    const size_t t = i % set.trees.size();
    switch (path) {
      case Path::kTaped:
        benchmark::DoNotOptimize(m.Forward(*set.queries[t], set.trees[t].get()));
        break;
      case Path::kFastWalk:
      case Path::kBatched:
        benchmark::DoNotOptimize(
            m.PredictCardFast(*set.queries[t], set.trees[t].get()));
        break;
      case Path::kBatchedMultiTree:
        m.InferTrees(batch, &outs);
        benchmark::DoNotOptimize(outs.data());
        break;
    }
    items += path == Path::kBatchedMultiTree
                 ? static_cast<int64_t>(set.total_nodes)
                 : static_cast<int64_t>(set.total_nodes / set.trees.size());
    ++i;
  }
  model::TreeModel::SetBatchedInferEnabled(true);
  state.SetItemsProcessed(items);
}

void BM_PerNode_Taped(benchmark::State& s) {
  PerNodeLane(s, *GetWorld().lpce_s, Path::kTaped);
}
void BM_PerNode_FastWalk(benchmark::State& s) {
  PerNodeLane(s, *GetWorld().lpce_s, Path::kFastWalk);
}
void BM_PerNode_Batched(benchmark::State& s) {
  PerNodeLane(s, *GetWorld().lpce_s, Path::kBatched);
}
void BM_PerNode_BatchedMultiTree(benchmark::State& s) {
  PerNodeLane(s, *GetWorld().lpce_s, Path::kBatchedMultiTree);
}

BENCHMARK(BM_PerNode_Taped)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PerNode_FastWalk)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PerNode_Batched)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PerNode_BatchedMultiTree)->Unit(benchmark::kMicrosecond);

/// Timed sweep over the whole tree set on one path; returns ns per node.
/// Takes the MINIMUM over `repeats` sweeps — the sweeps are deterministic, so
/// the fastest one is the least-perturbed measurement and the minimum is
/// robust against scheduler preemption on shared machines (mean/total are
/// not: one preempted sweep would poison the whole lane).
double TimePath(const model::TreeModel& m, Path path, int repeats) {
  const TreeSet& set = GetTreeSet();
  model::TreeModel::SetBatchedInferEnabled(path != Path::kFastWalk);
  std::vector<std::pair<const qry::Query*, const model::EstNode*>> batch;
  for (size_t t = 0; t < set.trees.size(); ++t) {
    batch.emplace_back(set.queries[t], set.trees[t].get());
  }
  std::vector<std::vector<model::TreeModel::InferNodeOutput>> outs;
  double best_ns = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    if (path == Path::kBatchedMultiTree) {
      m.InferTrees(batch, &outs);
    } else {
      for (size_t t = 0; t < set.trees.size(); ++t) {
        switch (path) {
          case Path::kTaped:
            benchmark::DoNotOptimize(
                m.Forward(*set.queries[t], set.trees[t].get()));
            break;
          default:
            benchmark::DoNotOptimize(
                m.PredictCardFast(*set.queries[t], set.trees[t].get()));
            break;
        }
      }
    }
    const auto end = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(end - start).count();
    if (ns < best_ns) best_ns = ns;
  }
  model::TreeModel::SetBatchedInferEnabled(true);
  return best_ns / static_cast<double>(set.total_nodes);
}

/// Every non-injected node's sigmoid output must carry the same bits on the
/// taped Forward and the level-batched Infer (the acceptance criterion that
/// lets the engine switch paths without regenerating goldens).
bool BatchedOutputsBitIdentical(const model::TreeModel& m) {
  const TreeSet& set = GetTreeSet();
  model::TreeModel::SetBatchedInferEnabled(true);
  std::vector<std::pair<const qry::Query*, const model::EstNode*>> batch;
  for (size_t t = 0; t < set.trees.size(); ++t) {
    batch.emplace_back(set.queries[t], set.trees[t].get());
  }
  std::vector<std::vector<model::TreeModel::InferNodeOutput>> outs;
  m.InferTrees(batch, &outs);
  for (size_t t = 0; t < set.trees.size(); ++t) {
    const auto fwd = m.Forward(*set.queries[t], set.trees[t].get());
    if (fwd.size() != outs[t].size()) return false;
    for (size_t i = 0; i < fwd.size(); ++i) {
      if (outs[t][i].y != fwd[i].y->value().at(0, 0)) return false;
    }
  }
  return true;
}

void PrintInferencePathComparison() {
  const World& world = GetWorld();
  std::printf("\n=== per-node inference latency by path (join-8 workload, "
              "%zu nodes) ===\n", GetTreeSet().total_nodes);
  std::printf("%8s %12s %12s %12s %12s %10s %8s\n", "model", "taped(ns)",
              "fastwalk(ns)", "batched(ns)", "multi(ns)", "speedup", "exact");
  std::ofstream json;
  if (!MetricsJsonPath().empty()) {
    json.open(MetricsJsonPath(), std::ios::app);
    LPCE_CHECK_MSG(json.good(), "cannot open --metrics_json file");
  }
  const int repeats = 20;
  const std::pair<const char*, const model::TreeModel*> models[] = {
      {"lpce_s", world.lpce_s.get()}, {"lpce_t", world.lpce_t.get()}};
  for (const auto& [tag, m] : models) {
    const double taped = TimePath(*m, Path::kTaped, repeats);
    const double walk = TimePath(*m, Path::kFastWalk, repeats);
    const double batched = TimePath(*m, Path::kBatched, repeats);
    const double multi = TimePath(*m, Path::kBatchedMultiTree, repeats);
    const bool exact = BatchedOutputsBitIdentical(*m);
    std::printf("%8s %12.0f %12.0f %12.0f %12.0f %9.2fx %8s\n", tag, taped,
                walk, batched, multi, taped / batched, exact ? "yes" : "NO");
    if (json.is_open()) {
      json << "{\"bench\":\"fig19_inference_paths\",\"model\":\"" << tag
           << "\",\"taped_ns_per_node\":" << taped
           << ",\"fastwalk_ns_per_node\":" << walk
           << ",\"batched_ns_per_node\":" << batched
           << ",\"batched_multi_tree_ns_per_node\":" << multi
           << ",\"speedup_batched_vs_taped\":" << taped / batched
           << ",\"bit_identical_to_taped\":" << (exact ? "true" : "false")
           << "}\n";
    }
  }
  std::printf("(speedup = taped / batched; 'exact' = batched outputs "
              "bit-identical to the taped Forward)\n");
}

void PrintTrainingSummary() {
  const World& world = GetWorld();
  if (world.train_stats.empty()) {
    std::printf("\n(training summary unavailable: models loaded from cache;"
                " delete %s to retrain)\n", world.options.cache_dir.c_str());
    return;
  }
  std::printf("\n=== training cost per model (this process) ===\n");
  std::printf("%8s %8s %10s %12s %12s\n", "model", "epochs", "best", "train(s)",
              "final loss");
  for (const char* tag : {"lpce_t", "lpce_s", "lpce_c", "lpce_i"}) {
    model::TrainStats s;
    if (!world.train_stats.Find(tag, &s)) continue;
    std::printf("%8s %8zu %10d %12.2f %12.4f\n", tag, s.epochs.size(),
                s.best_epoch, s.total_seconds, s.final_train_loss());
  }
}

}  // namespace
}  // namespace lpce::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  lpce::bench::ParseBenchFlags(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  lpce::bench::PrintInferencePathComparison();
  lpce::bench::PrintTrainingSummary();
  return 0;
}
