// Paper Figure 1: estimation q-error distribution vs. number of joins
// (2..8) for each estimator family. Expected shape: errors are small on
// 2-4 join queries and grow sharply with join count for every estimator.
#include <cstdio>

#include "bench_world.h"
#include "exec/executor.h"

namespace lpce::bench {
namespace {

void Run() {
  const World& world = GetWorld();
  auto lineup = MakeEstimatorLineup(world);

  std::printf("\n=== Figure 1: q-error percentiles vs number of joins ===\n");
  std::printf("%-12s %6s %10s %10s %10s %10s %10s\n", "Name", "joins", "p5",
              "p25", "median", "p75", "p95");
  for (const auto& entry : lineup) {
    if (entry.name == "LPCE-R" || entry.name == "PostgreSQL") continue;
    for (int joins = 2; joins <= 8; joins += 2) {
      std::vector<double> qerrors;
      for (const auto& labeled : world.test_by_joins.at(joins)) {
        entry.estimator->PrepareQuery(labeled.query);
        const double est = entry.estimator->EstimateSubset(
            labeled.query, labeled.query.AllRels());
        qerrors.push_back(
            exec::QError(est, static_cast<double>(labeled.FinalCard())));
      }
      std::printf("%-12s %6d %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                  entry.name.c_str(), joins, Percentile(qerrors, 5),
                  Percentile(qerrors, 25), Percentile(qerrors, 50),
                  Percentile(qerrors, 75), Percentile(qerrors, 95));
    }
    std::printf("\n");
  }
  std::printf("(paper: errors grow from ~1-10 at 2-4 joins to >100x at 8 joins)\n");
}

}  // namespace
}  // namespace lpce::bench

int main() {
  lpce::bench::Run();
  return 0;
}
