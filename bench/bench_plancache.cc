// Plan-cache bench: the template-heavy serving regime the cache targets
// (ROADMAP item 2). A Zipf-skewed workload over a small template pool runs
// three ways — cache off (cold), cache on serially (hit/miss decomposition),
// and cache on through a warmed concurrent EngineServer — and reports the
// T_P + T_I (planning + initial inference) collapse on hits, exact hit/miss
// accounting, QPS, and row-count verification against the workload labels.
//
// Self-contained like bench_serving: builds its own synthetic database, runs
// in seconds.
//
// Flags:
//   --templates=N         distinct query templates in the pool (default 20)
//   --queries=N           Zipf-skewed workload size (default 400)
//   --skew=F              Zipf exponent (default 1.0; 0 = uniform)
//   --scale=F             synthetic database scale (default 0.05)
//   --workers=N           worker threads for the concurrent phase (default 4)
//   --cap=N               plan cache capacity (default 64)
//   --reopt=0|1           run with re-optimization on (default 1)
//   --min_speedup=F       fail (exit 1) if hit-path T_P+T_I speedup over the
//                         cold path is below this (default 5; 0 disables)
//   --metrics_json=PATH   append one summary JSON line (timings, counters,
//                         lpce.plancache.* delta)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_world.h"
#include "card/histogram_estimator.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "engine/server.h"
#include "engine/trace.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace lpce::bench {
namespace {

struct Flags {
  int templates = 20;
  int queries = 400;
  double skew = 1.0;
  double scale = 0.05;
  int workers = 4;
  int cap = 64;
  bool reopt = true;
  double min_speedup = 5.0;
  std::string metrics_json;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--templates=")) {
      flags.templates = std::atoi(v);
    } else if (const char* v = value_of("--queries=")) {
      flags.queries = std::atoi(v);
    } else if (const char* v = value_of("--skew=")) {
      flags.skew = std::atof(v);
    } else if (const char* v = value_of("--scale=")) {
      flags.scale = std::atof(v);
    } else if (const char* v = value_of("--workers=")) {
      flags.workers = std::atoi(v);
    } else if (const char* v = value_of("--cap=")) {
      flags.cap = std::atoi(v);
    } else if (const char* v = value_of("--reopt=")) {
      flags.reopt = std::atoi(v) != 0;
    } else if (const char* v = value_of("--min_speedup=")) {
      flags.min_speedup = std::atof(v);
    } else if (const char* v = value_of("--metrics_json=")) {
      flags.metrics_json = v;
    } else {
      std::fprintf(
          stderr,
          "unknown flag %s\nusage: %s [--templates=N] [--queries=N] "
          "[--skew=F] [--scale=F] [--workers=N] [--cap=N] [--reopt=0|1] "
          "[--min_speedup=F] [--metrics_json=PATH]\n",
          arg.c_str(), argv[0]);
      std::exit(2);
    }
  }
  if (flags.templates <= 0 || flags.queries <= 0 || flags.cap <= 0 ||
      flags.workers <= 0) {
    std::fprintf(stderr, "need positive --templates/--queries/--cap/--workers\n");
    std::exit(2);
  }
  return flags;
}

int Run(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  common::SetGlobalPoolSize(1);  // cross-query behavior is the subject

  db::SynthImdbOptions opts;
  opts.scale = flags.scale;
  auto database = db::BuildSynthImdb(opts);
  stats::DatabaseStats stats;
  stats.Build(*database);
  wk::GeneratorOptions gen;
  gen.seed = 1106;
  wk::QueryGenerator generator(database.get(), gen);
  const auto pool = generator.GenerateLabeled(flags.templates, 2, 5);

  // Zipf(skew) draw sequence over the template pool.
  std::vector<int> sequence;
  {
    std::mt19937 rng(2718);
    std::vector<double> weights;
    for (int i = 0; i < flags.templates; ++i) {
      weights.push_back(1.0 / std::pow(static_cast<double>(i + 1), flags.skew));
    }
    std::discrete_distribution<int> dist(weights.begin(), weights.end());
    for (int i = 0; i < flags.queries; ++i) sequence.push_back(dist(rng));
  }

  eng::RunConfig config;
  config.enable_reopt = flags.reopt;

  uint64_t mismatches = 0;

  // Phase 1 — cold: cache off, the price every query pays today.
  double cold_tp_ti = 0.0;
  {
    card::HistogramEstimator estimator(&stats);
    eng::Engine engine(database.get(), opt::CostModel{});
    for (int idx : sequence) {
      const eng::RunStats run =
          engine.RunQuery(pool[idx].query, &estimator, nullptr, config);
      cold_tp_ti += run.plan_seconds + run.inference_seconds;
      if (run.result_count != pool[idx].FinalCard()) ++mismatches;
    }
  }
  const double cold_us = cold_tp_ti / sequence.size() * 1e6;

  // Phase 2 — cache on, serial: decompose T_P + T_I by hit/miss.
  double hit_tp_ti = 0.0, miss_tp_ti = 0.0;
  uint64_t serial_hits = 0, serial_misses = 0;
  {
    opt::PlanCache cache(static_cast<size_t>(flags.cap));
    card::HistogramEstimator estimator(&stats);
    eng::Engine engine(database.get(), opt::CostModel{});
    engine.set_plan_cache(&cache);
    for (int idx : sequence) {
      const eng::RunStats run =
          engine.RunQuery(pool[idx].query, &estimator, nullptr, config);
      if (run.result_count != pool[idx].FinalCard()) ++mismatches;
      const double tp_ti = run.plan_seconds + run.inference_seconds;
      const std::string& decision = run.trace->events().front().cache_decision;
      if (decision == "hit") {
        hit_tp_ti += tp_ti;
        ++serial_hits;
      } else {
        miss_tp_ti += tp_ti;
        ++serial_misses;
      }
    }
  }
  const double hit_us = serial_hits > 0 ? hit_tp_ti / serial_hits * 1e6 : 0.0;
  const double miss_us =
      serial_misses > 0 ? miss_tp_ti / serial_misses * 1e6 : 0.0;
  const double speedup = hit_us > 0.0 ? cold_us / hit_us : 0.0;

  // Phase 3 — concurrent: a warmed server must serve the whole workload as
  // exact hits regardless of worker interleaving.
  const common::MetricsSnapshot before =
      common::MetricsRegistry::Global().Snapshot();
  double concurrent_wall = 0.0;
  uint64_t concurrent_hits = 0, concurrent_misses = 0;
  {
    eng::ServerOptions options;
    options.num_workers = flags.workers;
    options.max_queue = sequence.size() + pool.size();
    options.run_config = config;
    options.plan_cache_capacity = static_cast<size_t>(flags.cap);
    eng::EngineServer server(
        database.get(), opt::CostModel{},
        [&stats](int worker_id) {
          (void)worker_id;
          eng::EngineServer::Session session;
          session.initial = std::make_unique<card::HistogramEstimator>(&stats);
          return session;
        },
        options);
    for (const auto& labeled : pool) {
      Result<eng::RunStats> warm = server.RunSync(labeled.query);
      if (!warm.ok() || warm.value().result_count != labeled.FinalCard()) {
        ++mismatches;
      }
    }
    const uint64_t warm_misses = server.plan_cache()->counters().misses;

    std::atomic<size_t> next{0};
    std::atomic<uint64_t> client_mismatches{0};
    WallTimer wall;
    std::vector<std::thread> clients;
    const int num_clients = std::max(4, 2 * flags.workers);
    for (int c = 0; c < num_clients; ++c) {
      clients.emplace_back([&] {
        for (;;) {
          const size_t pick = next.fetch_add(1);
          if (pick >= sequence.size()) return;
          const auto& labeled = pool[static_cast<size_t>(sequence[pick])];
          Result<eng::RunStats> run = server.RunSync(labeled.query);
          if (!run.ok() || run.value().result_count != labeled.FinalCard()) {
            client_mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    concurrent_wall = wall.ElapsedSeconds();
    mismatches += client_mismatches.load();

    const auto counters = server.plan_cache()->counters();
    concurrent_hits = counters.hits;
    concurrent_misses = counters.misses;
    // Exactness: warmup missed once per template, the workload is all hits.
    if (counters.misses != warm_misses ||
        counters.hits != sequence.size()) {
      std::printf("!! inexact hit/miss accounting: hits=%llu misses=%llu "
                  "(expected hits=%zu misses=%llu)\n",
                  static_cast<unsigned long long>(counters.hits),
                  static_cast<unsigned long long>(counters.misses),
                  sequence.size(),
                  static_cast<unsigned long long>(warm_misses));
      ++mismatches;
    }
  }
  const double qps =
      concurrent_wall > 0.0 ? sequence.size() / concurrent_wall : 0.0;

  std::printf("plan cache bench: %d templates, %d queries, Zipf(%.2f), "
              "cap %d\n",
              flags.templates, flags.queries, flags.skew, flags.cap);
  std::printf("%-28s %12s\n", "", "T_P+T_I/query");
  std::printf("%-28s %10.1fus\n", "cache off (cold)", cold_us);
  std::printf("%-28s %10.1fus  (%llu queries)\n", "cache on, miss", miss_us,
              static_cast<unsigned long long>(serial_misses));
  std::printf("%-28s %10.1fus  (%llu queries)\n", "cache on, hit", hit_us,
              static_cast<unsigned long long>(serial_hits));
  std::printf("hit-path speedup vs cold: %.1fx\n", speedup);
  std::printf("concurrent (%d workers): %.1f qps, hits=%llu misses=%llu\n",
              flags.workers, qps,
              static_cast<unsigned long long>(concurrent_hits),
              static_cast<unsigned long long>(concurrent_misses));

  bool ok = true;
  if (mismatches > 0) {
    ok = false;
    std::printf("!! %llu result mismatches\n",
                static_cast<unsigned long long>(mismatches));
  }
  if (flags.min_speedup > 0.0 && speedup < flags.min_speedup) {
    ok = false;
    std::printf("!! hit-path speedup %.1fx below required %.1fx\n", speedup,
                flags.min_speedup);
  }

  if (!flags.metrics_json.empty()) {
    std::ofstream metrics_out(flags.metrics_json, std::ios::app);
    const common::MetricsSnapshot delta =
        common::Delta(before, common::MetricsRegistry::Global().Snapshot());
    char line[640];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"plancache\",\"templates\":%d,\"queries\":%d,"
        "\"skew\":%.2f,\"workers\":%d,\"cap\":%d,\"cold_tp_ti_us\":%.3f,"
        "\"miss_tp_ti_us\":%.3f,\"hit_tp_ti_us\":%.3f,\"hit_speedup\":%.3f,"
        "\"serial_hits\":%llu,\"serial_misses\":%llu,"
        "\"concurrent_hits\":%llu,\"concurrent_misses\":%llu,"
        "\"concurrent_qps\":%.3f,\"mismatches\":%llu,\"delta\":",
        flags.templates, flags.queries, flags.skew, flags.workers, flags.cap,
        cold_us, miss_us, hit_us, speedup,
        static_cast<unsigned long long>(serial_hits),
        static_cast<unsigned long long>(serial_misses),
        static_cast<unsigned long long>(concurrent_hits),
        static_cast<unsigned long long>(concurrent_misses), qps,
        static_cast<unsigned long long>(mismatches));
    metrics_out << line << delta.ToJson() << "}\n";
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lpce::bench

int main(int argc, char** argv) { return lpce::bench::Run(argc, argv); }
