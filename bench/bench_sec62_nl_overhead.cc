// Paper Sec. 6.2 overhead measurement: supporting re-optimization requires
// materializing the outer side of nested-loop joins (a tuplestore in
// PostgreSQL). The paper reports +1.2% execution time and +5.8% peak memory
// over 500 IMDB queries. Our operator-at-a-time engine materializes
// everything, so we measure the analogous quantity directly: the time to
// copy each nested-loop outer input into a separate buffer and its size
// relative to the peak intermediate, across the Join-six/eight workloads.
#include <cstdio>

#include "bench_world.h"
#include "common/timer.h"

namespace lpce::bench {
namespace {

void Run() {
  const World& world = GetWorld();
  auto lineup = MakeEstimatorLineup(world);
  // Use the PostgreSQL baseline plans (most NL joins appear there).
  eng::Engine engine(world.database.get(), opt::CostModel{});
  opt::Planner planner(world.database.get(), opt::CostModel{});

  double exec_seconds = 0.0;
  double copy_seconds = 0.0;
  size_t peak_bytes = 0;
  size_t nl_bytes = 0;
  int queries = 0;
  int nl_joins = 0;
  for (int joins : {6, 8}) {
    for (const auto& labeled : world.test_by_joins.at(joins)) {
      opt::PlanResult planned =
          planner.Plan(labeled.query, lineup[0].estimator.get());
      exec::Executor executor(world.database.get(), &labeled.query);
      WallTimer exec_timer;
      exec::Executor::RunResult run = executor.Run(planned.plan.get(), {});
      exec_seconds += exec_timer.ElapsedSeconds();
      peak_bytes = std::max(peak_bytes, executor.peak_intermediate_bytes());
      ++queries;
      // Simulate the forced tuplestore: copy each NL outer input.
      std::vector<exec::PlanNode*> nodes;
      exec::PostOrderPlan(planned.plan.get(), &nodes);
      for (exec::PlanNode* node : nodes) {
        if (node->op != exec::PhysOp::kNestLoopJoin) continue;
        ++nl_joins;
        auto it = run.finished.find(node->outer.get());
        if (it == run.finished.end()) continue;
        WallTimer copy_timer;
        exec::RowSet copy = *it->second;  // deep copy = the tuplestore write
        copy_seconds += copy_timer.ElapsedSeconds();
        nl_bytes = std::max(nl_bytes, copy.ByteSize());
      }
    }
  }

  std::printf("\n=== Sec. 6.2: nested-loop materialization overhead ===\n");
  std::printf("queries executed:                 %d\n", queries);
  std::printf("nested-loop joins encountered:    %d\n", nl_joins);
  std::printf("total execution time:             %.3f s\n", exec_seconds);
  std::printf("added tuplestore copy time:       %.3f s (%.2f%%)\n", copy_seconds,
              exec_seconds > 0 ? copy_seconds / exec_seconds * 100.0 : 0.0);
  std::printf("peak intermediate size:           %.2f MB\n",
              static_cast<double>(peak_bytes) / 1048576.0);
  std::printf("largest NL outer tuplestore:      %.2f MB (%.2f%% of peak)\n",
              static_cast<double>(nl_bytes) / 1048576.0,
              peak_bytes > 0
                  ? static_cast<double>(nl_bytes) / peak_bytes * 100.0
                  : 0.0);
  std::printf("\n(paper: +1.2%% execution time, +5.8%% peak memory — small,"
              " because nested loop is only picked for tiny outer inputs)\n");
}

}  // namespace
}  // namespace lpce::bench

int main() {
  lpce::bench::Run();
  return 0;
}
