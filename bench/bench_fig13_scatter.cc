// Paper Figure 13: per-query scatter of each estimator's end-to-end time
// against PostgreSQL's, for Join-eight queries. Emitted as CSV rows
// (estimator, query index, postgres_ms, estimator_ms, inference_ms) plus a
// summary of how many points fall below the diagonal (i.e., improved).
#include <cstdio>

#include "bench_world.h"

namespace lpce::bench {
namespace {

void Run() {
  const World& world = GetWorld();
  const auto& queries = world.test_by_joins.at(8);
  auto lineup = MakeEstimatorLineup(world);

  std::vector<double> pg_times;
  {
    const auto stats = RunWorkload(world, lineup[0], queries);
    for (const auto& s : stats) pg_times.push_back(s.TotalSeconds() * 1e3);
  }

  std::printf("\n=== Figure 13: per-query end-to-end scatter (Join-eight) ===\n");
  std::printf("estimator,query,postgres_ms,estimator_ms,inference_ms\n");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (size_t i = 1; i < lineup.size(); ++i) {
    const auto stats = RunWorkload(world, lineup[i], queries);
    int improved = 0;
    for (size_t q = 0; q < stats.size(); ++q) {
      const double total = stats[q].TotalSeconds() * 1e3;
      const double infer =
          (stats[q].inference_seconds + stats[q].reopt_seconds) * 1e3;
      std::printf("%s,%zu,%.3f,%.3f,%.3f\n", lineup[i].name.c_str(), q,
                  pg_times[q], total, infer);
      if (total < pg_times[q]) ++improved;
    }
    std::printf("# %s: %d/%zu queries below the diagonal (improved)\n\n",
                lineup[i].name.c_str(), improved, stats.size());
  }
  std::printf("(paper: most points below the diagonal; points left of the\n"
              " model-inference line cannot be improved by that estimator)\n");
}

}  // namespace
}  // namespace lpce::bench

int main(int argc, char** argv) {
  lpce::bench::ParseBenchFlags(argc, argv);
  lpce::bench::Run();
  return 0;
}
