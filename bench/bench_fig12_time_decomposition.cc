// Paper Figure 12: decomposition of the aggregate end-to-end time into
// query execution / plan search / initial inference / re-optimization, per
// estimator, for Join-six and Join-eight.
//
// Expected shape: data-driven stand-ins spend a visibly larger share on
// inference (especially on Join-eight, which needs more estimates per
// query); LPCE-R adds a small re-optimization slice while shrinking the
// execution slice.
#include <cstdio>

#include "bench_world.h"

namespace lpce::bench {
namespace {

void RunSet(const World& world, int joins) {
  const auto& queries = world.test_by_joins.at(joins);
  auto lineup = MakeEstimatorLineup(world);
  std::printf("\n--- Join-%s (aggregate seconds over %zu queries) ---\n",
              joins == 6 ? "six" : "eight", queries.size());
  std::printf("%-12s %12s %12s %12s %12s %12s\n", "Name", "exec", "plan search",
              "inference", "reopt", "total");
  for (const auto& entry : lineup) {
    const auto stats = RunWorkload(world, entry, queries);
    double exec = 0, plan = 0, infer = 0, reopt = 0;
    for (const auto& s : stats) {
      exec += s.exec_seconds;
      plan += s.plan_seconds;
      infer += s.inference_seconds;
      reopt += s.reopt_seconds;
    }
    std::printf("%-12s %12.3f %12.3f %12.3f %12.3f %12.3f\n", entry.name.c_str(),
                exec, plan, infer, reopt, exec + plan + infer + reopt);
  }
}

}  // namespace
}  // namespace lpce::bench

int main(int argc, char** argv) {
  lpce::bench::ParseBenchFlags(argc, argv);
  const auto& world = lpce::bench::GetWorld();
  std::printf("\n=== Figure 12: end-to-end time decomposition ===\n");
  lpce::bench::RunSet(world, 6);
  lpce::bench::RunSet(world, 8);
  return 0;
}
