// Hot-swap overhead bench: closed-loop serving through the versioned
// EngineServer while the model registry publishes mid-workload. Reports, per
// worker count, the QPS with no swaps vs with --publishes spread across the
// run, the publish-call latency (the swap itself: snapshot build + pointer
// swap + plan-cache invalidation hook), and the session rebuilds workers
// performed — the zero-downtime claim in numbers: rejected must stay 0 and
// every row count must match its label under either cadence.
//
// Self-contained like bench_serving: builds a synthetic database and
// untrained tiny models (swap mechanics do not care about model quality), so
// it runs in seconds.
//
// Flags:
//   --workers=1,2,4     worker counts to sweep
//   --queries=N         workload size (default 400)
//   --scale=F           synthetic database scale (default 0.1)
//   --publishes=N       mid-run publishes in the swap lane (default 8)
//   --max_overhead=PCT  exit 1 when the swap lane costs more than PCT
//                       percent QPS vs the no-swap lane (0 = report only)
//   --metrics_json=PATH append one summary JSON line per worker count
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "engine/server.h"
#include "lpce/estimators.h"
#include "lpce/model_registry.h"
#include "lpce/tree_model.h"
#include "storage/database.h"
#include "workload/workload.h"

namespace lpce::bench {
namespace {

struct Flags {
  std::vector<int> workers = {1, 2, 4};
  int queries = 400;
  double scale = 0.1;
  int publishes = 8;
  double max_overhead = 0.0;
  std::string metrics_json;
};

std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string item = csv.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const int value = std::atoi(item.c_str());
    if (value > 0) out.push_back(value);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

struct LaneResult {
  double seconds = 0.0;
  double qps = 0.0;
  double publish_p50_us = 0.0;
  double publish_max_us = 0.0;
  uint64_t rebuilds = 0;
  uint64_t rejected = 0;
  uint64_t wrong_results = 0;
};

struct World {
  std::unique_ptr<db::Database> database;
  std::unique_ptr<stats::DatabaseStats> stats;
  std::unique_ptr<model::FeatureEncoder> encoder;
  model::TreeModelConfig config;
  std::vector<wk::LabeledQuery> workload;
};

/// One closed-loop pass: submit everything, publish `publishes` fresh
/// versions spaced evenly over the completion count, drain.
LaneResult RunLane(const World& world, int workers, int publishes) {
  model::ModelRegistry registry;
  auto make_model = [&world](uint64_t seed) {
    model::TreeModelConfig config = world.config;
    config.seed = seed;
    return std::make_shared<model::TreeModel>(world.encoder.get(), config);
  };
  registry.Publish(make_model(1), nullptr, "v1");

  eng::ServerOptions options;
  options.num_workers = workers;
  options.max_queue = world.workload.size();
  options.run_config.enable_reopt = true;
  options.run_config.qerror_threshold = 10.0;
  options.model_registry = &registry;
  const db::Database* db = world.database.get();
  eng::EngineServer server(
      db, opt::CostModel{},
      [db](int, const model::ModelVersion& version) {
        eng::EngineServer::Session session;
        session.initial = std::make_unique<model::TreeModelEstimator>(
            "LPCE-I", version.model.get(), db);
        return session;
      },
      options);

  LaneResult result;
  WallTimer timer;
  std::vector<std::shared_future<eng::RunStats>> futures;
  futures.reserve(world.workload.size());
  for (const auto& labeled : world.workload) {
    auto admitted = server.Submit(labeled.query);
    if (!admitted.ok()) {
      ++result.rejected;
      continue;
    }
    futures.push_back(admitted.value());
  }

  std::vector<double> publish_us;
  const size_t total = world.workload.size();
  for (int p = 1; p <= publishes; ++p) {
    const uint64_t threshold = total * static_cast<size_t>(p) / (publishes + 1);
    while (server.counters().completed < threshold) std::this_thread::yield();
    WallTimer publish_timer;
    registry.Publish(make_model(static_cast<uint64_t>(p) + 1), nullptr,
                     "swap" + std::to_string(p));
    publish_us.push_back(publish_timer.ElapsedSeconds() * 1e6);
  }

  for (size_t q = 0; q < futures.size(); ++q) {
    const eng::RunStats stats = futures[q].get();
    if (stats.result_count != world.workload[q].FinalCard()) {
      ++result.wrong_results;
    }
  }
  result.seconds = timer.ElapsedSeconds();
  server.Shutdown();

  result.qps = result.seconds > 0.0
                   ? static_cast<double>(futures.size()) / result.seconds
                   : 0.0;
  result.rebuilds = server.counters().session_rebuilds;
  result.rejected += server.counters().rejected;
  if (!publish_us.empty()) {
    std::sort(publish_us.begin(), publish_us.end());
    result.publish_p50_us = publish_us[publish_us.size() / 2];
    result.publish_max_us = publish_us.back();
  }
  return result;
}

int RunSweep(const Flags& flags) {
  World world;
  db::SynthImdbOptions db_opts;
  db_opts.scale = flags.scale;
  world.database = db::BuildSynthImdb(db_opts);
  world.stats = std::make_unique<stats::DatabaseStats>();
  world.stats->Build(*world.database);
  world.encoder = std::make_unique<model::FeatureEncoder>(
      &world.database->catalog(), world.stats.get());
  world.config.feature_dim = world.encoder->dim();
  world.config.dim = 16;
  world.config.embed_hidden = 16;
  world.config.out_hidden = 32;
  world.config.log_max_card = 18.0;

  wk::GeneratorOptions gen;
  gen.seed = 1207;
  world.workload = wk::QueryGenerator(world.database.get(), gen)
                       .GenerateLabeled(flags.queries, 2, 4);

  std::printf("registry hot-swap bench: %d queries, scale %.2f, %d publishes"
              " in the swap lane\n\n",
              flags.queries, flags.scale, flags.publishes);
  std::printf("%7s %12s %12s %9s %12s %12s %9s %9s\n", "workers", "qps",
              "qps(swaps)", "overhead", "publish p50", "publish max",
              "rebuilds", "rejected");

  bool gate_failed = false;
  std::ofstream metrics;
  if (!flags.metrics_json.empty()) {
    metrics.open(flags.metrics_json, std::ios::app);
  }
  for (int workers : flags.workers) {
    const LaneResult base = RunLane(world, workers, 0);
    const LaneResult swap = RunLane(world, workers, flags.publishes);
    const double overhead =
        base.qps > 0.0 ? (base.qps - swap.qps) / base.qps * 100.0 : 0.0;
    std::printf("%7d %12.1f %12.1f %8.1f%% %10.1fus %10.1fus %9llu %9llu\n",
                workers, base.qps, swap.qps, overhead, swap.publish_p50_us,
                swap.publish_max_us,
                static_cast<unsigned long long>(swap.rebuilds),
                static_cast<unsigned long long>(base.rejected +
                                                swap.rejected));
    if (base.wrong_results + swap.wrong_results > 0) {
      std::fprintf(stderr, "FAIL: %llu wrong row counts at %d workers\n",
                   static_cast<unsigned long long>(base.wrong_results +
                                                   swap.wrong_results),
                   workers);
      gate_failed = true;
    }
    if (base.rejected + swap.rejected > 0) {
      std::fprintf(stderr, "FAIL: %llu rejected queries at %d workers"
                   " (hot swaps must not shed load)\n",
                   static_cast<unsigned long long>(base.rejected +
                                                   swap.rejected),
                   workers);
      gate_failed = true;
    }
    if (flags.max_overhead > 0.0 && overhead > flags.max_overhead) {
      std::fprintf(stderr,
                   "FAIL: swap lane overhead %.1f%% exceeds gate %.1f%% at"
                   " %d workers\n",
                   overhead, flags.max_overhead, workers);
      gate_failed = true;
    }
    if (metrics.is_open()) {
      metrics << "{\"bench\":\"registry_swap\",\"workers\":" << workers
              << ",\"queries\":" << flags.queries
              << ",\"publishes\":" << flags.publishes
              << ",\"qps_base\":" << base.qps << ",\"qps_swap\":" << swap.qps
              << ",\"overhead_pct\":" << overhead
              << ",\"publish_p50_us\":" << swap.publish_p50_us
              << ",\"publish_max_us\":" << swap.publish_max_us
              << ",\"session_rebuilds\":" << swap.rebuilds << "}\n";
    }
  }
  std::printf("\n(overhead = QPS lost to the swap lane; publish latency is"
              " the registry swap itself, which never blocks workers)\n");
  return gate_failed ? 1 : 0;
}

}  // namespace

int Run(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--workers", &v)) {
      flags.workers = ParseIntList(v);
    } else if (ParseFlag(argv[i], "--queries", &v)) {
      flags.queries = std::atoi(v);
    } else if (ParseFlag(argv[i], "--scale", &v)) {
      flags.scale = std::atof(v);
    } else if (ParseFlag(argv[i], "--publishes", &v)) {
      flags.publishes = std::atoi(v);
    } else if (ParseFlag(argv[i], "--max_overhead", &v)) {
      flags.max_overhead = std::atof(v);
    } else if (ParseFlag(argv[i], "--metrics_json", &v)) {
      flags.metrics_json = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--workers=1,2,4] [--queries=N] [--scale=F]"
                   " [--publishes=N] [--max_overhead=PCT]"
                   " [--metrics_json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  return RunSweep(flags);
}

}  // namespace lpce::bench

int main(int argc, char** argv) { return lpce::bench::Run(argc, argv); }
