// Paper Table 1: estimation q-error and per-estimate inference time for each
// learning-based estimator, on queries with 8 joins.
//
// Expected shape: sampling-based data-driven stand-ins (DeepDB*/NeuroCard*/
// FLAT*) and the hybrid (UAE*) are markedly more accurate but orders of
// magnitude slower per estimate than the query-driven models (MSCN/TLSTM/
// Flow-Loss/LPCE); LPCE-I is more accurate than MSCN/TLSTM at comparable or
// better latency.
#include <cstdio>

#include "bench_world.h"
#include "common/timer.h"
#include "exec/executor.h"

namespace lpce::bench {
namespace {

void Run() {
  const World& world = GetWorld();
  const auto& queries = world.test_by_joins.at(8);
  auto lineup = MakeEstimatorLineup(world);

  std::printf("\n=== Table 1: q-error and inference time (8-join queries) ===\n");
  std::printf("%-12s %12s %12s %16s\n", "Name", "median q", "mean q",
              "inference (ms)");
  for (const auto& entry : lineup) {
    if (entry.name == "LPCE-R" || entry.name == "PostgreSQL") continue;
    std::vector<double> qerrors;
    double seconds = 0.0;
    size_t calls = 0;
    for (const auto& labeled : queries) {
      // No PrepareQuery here: Table 1 times ONE cold cardinality estimation
      // (the batched Sec. 6.1 preparation would turn the lookup into ~0).
      WallTimer timer;
      const double est = entry.estimator->EstimateSubset(labeled.query,
                                                         labeled.query.AllRels());
      seconds += timer.ElapsedSeconds();
      ++calls;
      qerrors.push_back(
          exec::QError(est, static_cast<double>(labeled.FinalCard())));
    }
    double mean = 0.0;
    for (double q : qerrors) mean += q;
    mean /= static_cast<double>(qerrors.size());
    std::printf("%-12s %12.2f %12.2f %16.3f\n", entry.name.c_str(),
                Percentile(qerrors, 50), mean,
                seconds / static_cast<double>(calls) * 1e3);
  }
  std::printf("\n(paper: data-driven ~5-9 q-error at ~6-30 ms; query-driven"
              " ~12-37 q-error at 0.1-1.2 ms; LPCE 11.6 at 0.23 ms)\n");
}

}  // namespace
}  // namespace lpce::bench

int main() {
  lpce::bench::Run();
  return 0;
}
